#pragma once

// Structured run tracing for the threaded runtime (and, via handcrafted
// Trace objects, the simulator). Each participating thread owns a
// TraceLane — a fixed-capacity ring of typed events stamped on a
// steady clock shared by the whole recorder — so capture is lock-free,
// allocation-free in steady state, and near-free when disabled (one
// relaxed atomic load per emit). After the run quiesces, drain() turns
// the rings into a plain Trace that the exporters (Chrome trace-event
// JSON for Perfetto, CSV, ASCII Gantt) consume.

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <atomic>
#include <chrono>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "util/annotations.hpp"
#include "util/ring_buffer.hpp"

namespace swh::obs {

/// Full task-lifecycle + transport + span taxonomy (DESIGN.md
/// "Observability"). Scheduler-decision kinds mirror core::SchedObserver.
enum class EventKind : std::uint8_t {
    SlaveRegistered,     ///< pe, value = PeKind
    SlaveDeregistered,   ///< pe
    PackageSized,        ///< pe, value = tasks in the package
    TaskAssigned,        ///< pe, task
    ReplicaIssued,       ///< pe, task (workload-adjustment re-assignment)
    Progress,            ///< pe, value = realised cells/s
    RateError,           ///< pe, value = |estimate-realised|/realised
    CompletedAccepted,   ///< pe, task (first finisher)
    CompletedDiscarded,  ///< pe, task (lost replica race)
    TaskCancelled,       ///< pe, task (cancel_losers abandon order)
    TaskFailed,          ///< pe, task, value = 1 if abandoned (no retry)
    SlavePresumedDead,   ///< pe (liveness timeout expired)
    ChannelSend,         ///< value = queue depth after the send
    ChannelRecv,         ///< value = queue depth after the recv
    SpanBegin,           ///< name, task — task/kernel span opens
    SpanEnd,             ///< name, task, value = outcome (0 ok, 1 aborted)
};

const char* to_string(EventKind kind);

/// Sentinel for events not tied to a task.
constexpr core::TaskId kNoTask = ~core::TaskId{0};

/// One captured event. POD on purpose: emitting must never allocate.
/// `name` must point at static-storage strings (string literals).
struct TraceEvent {
    double t = 0.0;  ///< seconds since the recorder epoch
    EventKind kind = EventKind::Progress;
    core::PeId pe = core::kInvalidPe;
    core::TaskId task = kNoTask;
    double value = 0.0;
    const char* name = nullptr;
};

class TraceRecorder;

/// One thread's capture stream. Obtain via TraceRecorder::lane(); the
/// reference stays valid for the recorder's lifetime. NOT thread-safe:
/// a lane belongs to exactly one thread (or to one lock, e.g. a
/// channel's mutex — see ChannelTracer), which is what guarantees the
/// per-lane event order the tests assert.
class TraceLane {
public:
    /// Records an event stamped now. When the recorder is disabled this
    /// is a single relaxed load + branch; when full, the ring drops the
    /// OLDEST event (dropped() counts them) so recent history survives.
    inline void emit(EventKind kind, core::PeId pe = core::kInvalidPe,
                     core::TaskId task = kNoTask, double value = 0.0,
                     const char* name = nullptr);

    void span_begin(const char* name, core::TaskId task = kNoTask,
                    core::PeId pe = core::kInvalidPe) {
        emit(EventKind::SpanBegin, pe, task, 0.0, name);
    }

    /// `outcome` 0 = completed, 1 = aborted/cancelled (renders as 'x'
    /// in the Gantt).
    void span_end(const char* name, core::TaskId task = kNoTask,
                  double outcome = 0.0,
                  core::PeId pe = core::kInvalidPe) {
        emit(EventKind::SpanEnd, pe, task, outcome, name);
    }

    const std::string& label() const { return label_; }
    std::uint64_t dropped() const { return dropped_; }
    std::size_t size() const { return ring_.size(); }

private:
    friend class TraceRecorder;
    TraceLane(TraceRecorder* recorder, std::string label,
              std::size_t capacity)
        : recorder_(recorder), label_(std::move(label)), ring_(capacity) {}

    TraceRecorder* recorder_;
    std::string label_;
    RingBuffer<TraceEvent> ring_;
    std::uint64_t dropped_ = 0;
};

/// Drained, exporter-ready form of one lane.
struct TraceLaneData {
    std::string label;
    std::vector<TraceEvent> events;  ///< chronological (emission order)
    std::uint64_t dropped = 0;
};

/// A complete captured run: one entry per lane, in registration order.
/// Plain data — the simulator/bench harness build these by hand from
/// virtual-time spans so both execution modes share the exporters.
struct Trace {
    std::vector<TraceLaneData> lanes;

    std::size_t total_events() const {
        std::size_t n = 0;
        for (const TraceLaneData& l : lanes) n += l.events.size();
        return n;
    }

    /// Events lost to ring overflow across all lanes. Non-zero means the
    /// exporters see a truncated history; every exporter surfaces this.
    std::uint64_t total_dropped() const {
        std::uint64_t n = 0;
        for (const TraceLaneData& l : lanes) n += l.dropped;
        return n;
    }
};

/// Owns the lanes and the shared clock. Lane registration takes a lock;
/// emission does not. Typical lifecycle: construct, hand lanes out,
/// reset_epoch() at run start, run, drain() after every emitting thread
/// has quiesced (drain is NOT synchronised against concurrent emits).
class TraceRecorder {
public:
    static constexpr std::size_t kDefaultLaneCapacity = 1 << 14;

    explicit TraceRecorder(std::size_t lane_capacity = kDefaultLaneCapacity,
                           bool enabled = true)
        : enabled_(enabled),
          lane_capacity_(lane_capacity),
          epoch_(Clock::now()) {}

    TraceRecorder(const TraceRecorder&) = delete;
    TraceRecorder& operator=(const TraceRecorder&) = delete;

    bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
    void set_enabled(bool on) {
        enabled_.store(on, std::memory_order_relaxed);
    }

    /// Seconds since the epoch on the shared steady clock.
    double now_s() const {
        return std::chrono::duration<double>(Clock::now() - epoch_).count();
    }

    /// Re-zeroes the timeline (e.g. at HybridRuntime::run entry) so
    /// trace timestamps are comparable with the run's own clock.
    void reset_epoch() { epoch_ = Clock::now(); }

    /// Registers a new capture stream (always a new lane, even for a
    /// repeated label). Thread-safe; the returned reference is stable.
    /// The lane itself is NOT guarded by the recorder lock — it belongs
    /// to one thread (see TraceLane).
    TraceLane& lane(std::string label) SWH_EXCLUDES(mu_) {
        const swh::LockGuard lock(mu_);
        lanes_.push_back(std::unique_ptr<TraceLane>(
            new TraceLane(this, std::move(label), lane_capacity_)));
        return *lanes_.back();
    }

    /// Copies every lane's ring into a flat Trace. Call only after the
    /// emitting threads have joined/quiesced.
    Trace drain() const SWH_EXCLUDES(mu_);

    /// Sum of every lane's dropped count. Like drain(), only meaningful
    /// after the emitting threads have quiesced (lane counters are
    /// owned by their emitting threads, not the recorder lock).
    std::uint64_t dropped_total() const SWH_EXCLUDES(mu_);

private:
    using Clock = std::chrono::steady_clock;

    std::atomic<bool> enabled_;
    const std::size_t lane_capacity_;
    /// Written only by reset_epoch(), which the owner calls before the
    /// emitting threads start (or after they quiesce) — never guarded
    /// by the lane-registry lock.
    SWH_NOT_GUARDED Clock::time_point epoch_;
    mutable swh::Mutex mu_;
    std::vector<std::unique_ptr<TraceLane>> lanes_ SWH_GUARDED_BY(mu_);
};

inline void TraceLane::emit(EventKind kind, core::PeId pe, core::TaskId task,
                            double value, const char* name) {
    if (!recorder_->enabled()) return;
    if (ring_.full()) ++dropped_;
    ring_.push(TraceEvent{recorder_->now_s(), kind, pe, task, value, name});
}

// ---- Exporters ----------------------------------------------------------

/// Chrome trace-event JSON ({"traceEvents":[...]}), loadable in Perfetto
/// (ui.perfetto.dev) and chrome://tracing. Lanes become named threads of
/// pid 0; spans become B/E duration events, channel depths become "C"
/// counter tracks, everything else instant events with args.
void export_chrome_json(const Trace& trace, std::ostream& os);
std::string chrome_json(const Trace& trace);

/// Flat CSV: lane,label,t_seconds,kind,pe,task,value,name.
void export_csv(const Trace& trace, std::ostream& os);

/// ASCII Gantt of the trace's SpanBegin/SpanEnd pairs, one row per lane
/// that carries spans — the threaded-runtime analogue of the
/// simulator's paper-Fig.5 chart (both render through obs::render_gantt).
std::string render_trace_gantt(const Trace& trace, double time_step);

}  // namespace swh::obs

#include "obs/prometheus.hpp"

#include <cmath>
#include <ostream>
#include <sstream>

namespace swh::obs {

namespace {

/// Prometheus metric names admit [a-zA-Z0-9_:]; everything else (the
/// registry's dots, mostly) becomes '_'.
std::string sanitize(const std::string& prefix, const std::string& name) {
    std::string out = prefix.empty() ? "" : prefix + "_";
    out.reserve(out.size() + name.size());
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':';
        out.push_back(ok ? c : '_');
    }
    return out;
}

void number(std::ostream& os, double v) {
    if (std::isnan(v)) {
        os << "NaN";
    } else if (std::isinf(v)) {
        os << (v > 0 ? "+Inf" : "-Inf");
    } else {
        std::ostringstream tmp;
        tmp.precision(12);
        tmp << v;
        os << tmp.str();
    }
}

}  // namespace

void export_prometheus(const MetricsSnapshot& snapshot, std::ostream& os,
                       const std::string& prefix) {
    for (const auto& [name, value] : snapshot.counters) {
        const std::string n = sanitize(prefix, name) + "_total";
        os << "# TYPE " << n << " counter\n" << n << ' ' << value << '\n';
    }
    for (const auto& [name, value] : snapshot.gauges) {
        const std::string n = sanitize(prefix, name);
        os << "# TYPE " << n << " gauge\n" << n << ' ';
        number(os, value);
        os << '\n';
    }
    for (const HistogramSummary& h : snapshot.histograms) {
        const std::string n = sanitize(prefix, h.name);
        os << "# TYPE " << n << " histogram\n";
        std::uint64_t cumulative = 0;
        for (const HistogramSummary::Bucket& b : h.buckets) {
            cumulative += b.count;
            os << n << "_bucket{le=\"";
            // Upper bound of [2^exp2, 2^(exp2+1)).
            number(os, std::ldexp(1.0, b.exp2 + 1));
            os << "\"} " << cumulative << '\n';
        }
        os << n << "_bucket{le=\"+Inf\"} " << h.count << '\n';
        os << n << "_sum ";
        number(os, h.mean * static_cast<double>(h.count));
        os << '\n' << n << "_count " << h.count << '\n';
        // Pre-estimated quantiles (clamped-interpolation, see
        // obs/metrics.hpp) for scrapers that skip histogram_quantile().
        os << "# TYPE " << n << "_quantile gauge\n";
        for (const auto& [q, v] :
             {std::pair<const char*, double>{"0.5", h.p50},
              {"0.9", h.p90},
              {"0.95", h.p95},
              {"0.99", h.p99}}) {
            os << n << "_quantile{quantile=\"" << q << "\"} ";
            number(os, v);
            os << '\n';
        }
    }
}

std::string prometheus_text(const MetricsSnapshot& snapshot,
                            const std::string& prefix) {
    std::ostringstream os;
    export_prometheus(snapshot, os, prefix);
    return os.str();
}

}  // namespace swh::obs

#pragma once

// Post-run workload-balance auditing (paper §IV-A.2's effectiveness
// check): given a drained obs::Trace — from the threaded runtime's
// TraceRecorder or from sim::to_trace() on a DES report — decompose
// each PE's time into busy/comm/idle, attribute cells/s, compute the
// imbalance ratio and the ideal-balance makespan lower bound, identify
// the straggler, and walk the critical chain of task spans that bounds
// the makespan. Pure analysis: deterministic for a deterministic trace
// (the DES determinism test relies on byte-identical to_text()).
//
// Definitions (see DESIGN.md "Balance auditing & performance
// attribution"):
//   busy   = union of the lane's top-level task spans
//   comm   = per span, the dispatch gap start − max(assign_t, prev_end)
//            when a TaskAssigned/ReplicaIssued event for (pe, task) is
//            in the trace (clamped to the actual inter-span gap)
//   idle   = horizon − busy − comm
//   imbalance ratio    = max(busy) / mean(busy)
//   ideal makespan     = Σ busy / n_pes  (perfect-divisibility bound)
//   efficiency         = Σ busy / (n_pes × horizon)
//   critical path      = greedy backward chain: from the span with the
//            latest end, repeatedly step to the latest-ending span that
//            finished before the current one started, while the
//            scheduling gap stays within gap_tolerance_s.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "obs/trace.hpp"

namespace swh::obs {

/// Per-PE attribution row. `pe` comes from the lane's span events;
/// lanes without task spans (master, channels) produce no row.
struct BalancePe {
    std::string label;
    core::PeId pe = core::kInvalidPe;
    double busy_s = 0.0;
    double comm_s = 0.0;
    double idle_s = 0.0;
    std::size_t tasks_accepted = 0;   ///< spans ended with outcome 0
    std::size_t tasks_aborted = 0;    ///< spans ended with outcome != 0
    std::size_t replicas_received = 0;
    double cells = 0.0;               ///< attributed work (see options)
    double cells_per_second = 0.0;    ///< cells / busy_s
    double first_start_s = 0.0;       ///< first span begin
    double last_end_s = 0.0;          ///< last span end
};

/// One link of the critical chain, latest first reversed to
/// chronological order. `wait_s` is the scheduling gap bridged from the
/// previous step's end (0 for the chain's first step).
struct CriticalStep {
    core::PeId pe = core::kInvalidPe;
    std::size_t lane = 0;
    core::TaskId task = kNoTask;
    double start_s = 0.0;
    double end_s = 0.0;
    double wait_s = 0.0;
};

struct BalanceOptions {
    /// Largest scheduling gap (seconds) the critical chain may bridge;
    /// a larger gap means the next task was arrival-bound, not
    /// predecessor-bound, and the chain stops. <= 0 ⇒ auto: 5% of the
    /// horizon.
    double gap_tolerance_s = 0.0;
    /// Cell attribution per lane label (SlaveReport::cells_computed /
    /// sim PeReport::cells). Lanes not listed fall back to integrating
    /// the lane's Progress-rate samples; 0 if it has none.
    std::vector<std::pair<std::string, double>> cells_by_label;
    /// Analysis horizon override; <= 0 ⇒ the latest event timestamp.
    double horizon_s = 0.0;
};

struct BalanceReport {
    double horizon_s = 0.0;
    std::size_t pe_count = 0;
    double total_busy_s = 0.0;
    double total_comm_s = 0.0;
    double total_idle_s = 0.0;
    double ideal_makespan_s = 0.0;
    double imbalance_ratio = 0.0;  ///< max busy / mean busy (1 = perfect)
    double efficiency = 0.0;       ///< mean busy / horizon
    /// Index into `pes` of the PE whose last completion lands latest —
    /// the PE that ends the run. kNoStraggler when there are no spans.
    static constexpr std::size_t kNoStraggler = ~std::size_t{0};
    std::size_t straggler = kNoStraggler;
    /// How much later the straggler finishes than the runner-up (the
    /// makespan reduction a perfect last-task placement could buy).
    double straggler_tail_s = 0.0;
    std::vector<BalancePe> pes;
    std::vector<CriticalStep> critical_path;  ///< chronological
    double critical_path_s = 0.0;   ///< chain last end − chain first start
    double critical_coverage = 0.0; ///< critical_path_s / horizon
    double gap_tolerance_s = 0.0;   ///< the tolerance actually used
    std::size_t events_analyzed = 0;
    std::uint64_t dropped_events = 0;

    /// Human-readable table (deterministic byte-for-byte for a
    /// deterministic trace).
    std::string to_text() const;
    std::string to_json() const;
};

/// Runs the audit. Tolerates empty traces (all-zero report).
BalanceReport analyze_balance(const Trace& trace,
                              const BalanceOptions& options = {});

}  // namespace swh::obs

#include "obs/gantt.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"
#include "util/str.hpp"

namespace swh::obs {

std::string render_gantt(std::span<const GanttSpan> spans,
                         std::span<const std::string> row_labels,
                         double time_step, const char* unit) {
    SWH_REQUIRE(time_step > 0.0, "time step must be positive");
    double horizon = 0.0;
    for (const GanttSpan& s : spans) horizon = std::max(horizon, s.end);
    const auto cols = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(horizon / time_step)));
    std::size_t label_w = 0;
    for (const std::string& label : row_labels) {
        label_w = std::max(label_w, label.size());
    }

    auto glyph_char = [](std::uint64_t g) {
        static const char* glyphs =
            "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
        return glyphs[g % 62];
    };

    std::ostringstream os;
    for (std::size_t p = 0; p < row_labels.size(); ++p) {
        std::string row(cols, '.');
        for (const GanttSpan& s : spans) {
            if (s.row != p) continue;
            auto c0 = static_cast<std::size_t>(s.start / time_step);
            auto c1 = static_cast<std::size_t>(std::ceil(s.end / time_step));
            c1 = std::min(c1, cols);
            for (std::size_t c = c0; c < c1; ++c) {
                row[c] = s.aborted ? 'x' : glyph_char(s.glyph);
            }
        }
        os << row_labels[p]
           << std::string(label_w - row_labels[p].size(), ' ') << " |" << row
           << "|\n";
    }
    os << std::string(label_w, ' ') << "  0" << std::string(cols - 1, ' ')
       << swh::format_double(horizon, 1) << unit << "  (one column = "
       << swh::format_double(time_step, 2) << unit << ")\n";
    return os.str();
}

}  // namespace swh::obs

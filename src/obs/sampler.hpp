#pragma once

// Background metrics sampler for resident processes: a thread that
// snapshots a MetricsRegistry every period and hands the snapshot to a
// callback — render a live dashboard frame, rewrite a Prometheus
// scrape file, append a time series. The sampled registry is only ever
// read (snapshot() takes the registry's own locks), so running the
// sampler perturbs nothing the run computes.

#include <cstdint>
#include <atomic>
#include <chrono>
#include <functional>
#include <thread>

#include "obs/metrics.hpp"
#include "util/annotations.hpp"

namespace swh::obs {

class PeriodicSampler {
public:
    /// `elapsed_s` is seconds since the sampler started (steady clock).
    using Callback =
        std::function<void(const MetricsSnapshot&, double elapsed_s)>;

    /// Starts sampling immediately; the first tick fires after one
    /// period. The registry and callback must stay valid until stop().
    PeriodicSampler(const MetricsRegistry& registry, double period_s,
                    Callback callback);

    /// Joins the thread; idempotent, and the destructor calls it.
    ~PeriodicSampler();
    void stop();

    std::uint64_t ticks() const {
        return ticks_.load(std::memory_order_relaxed);
    }

    PeriodicSampler(const PeriodicSampler&) = delete;
    PeriodicSampler& operator=(const PeriodicSampler&) = delete;

private:
    void loop(double period_s, Callback callback);

    const MetricsRegistry& registry_;
    std::atomic<std::uint64_t> ticks_{0};
    swh::Mutex mu_;
    swh::CondVar cv_;
    bool stopping_ SWH_GUARDED_BY(mu_) = false;
    /// Owned by the constructing thread: started in the constructor,
    /// joined in stop(); mu_ only covers the stop flag the thread polls.
    SWH_NOT_GUARDED std::thread thread_;
};

}  // namespace swh::obs

#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace swh::obs {

namespace {

int bucket_index(double v) {
    if (!(v > 0.0)) return 0;  // 0, negatives, NaN -> lowest bucket
    const int e = std::ilogb(v);  // floor(log2(v)) for finite v > 0
    return std::clamp(e - Histogram::kMinExp, 0, Histogram::kBuckets - 1);
}

double bucket_low(int i) { return std::ldexp(1.0, i + Histogram::kMinExp); }

/// Percentile estimate: walk the cumulative bucket counts to the target
/// rank, interpolate linearly inside the bucket, clamp to the exact
/// observed [min, max].
double estimate_percentile(const std::array<std::uint64_t,
                                            Histogram::kBuckets>& buckets,
                           std::uint64_t count, double p, double min,
                           double max) {
    if (count == 0) return 0.0;
    const double target = p / 100.0 * static_cast<double>(count);
    std::uint64_t seen = 0;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
        if (buckets[i] == 0) continue;
        const auto next = seen + buckets[i];
        if (static_cast<double>(next) >= target) {
            const double frac =
                (target - static_cast<double>(seen)) /
                static_cast<double>(buckets[i]);
            const double lo = bucket_low(i);
            const double est = lo + frac * lo;  // hi = 2*lo
            return std::clamp(est, min, max);
        }
        seen = next;
    }
    return max;
}

}  // namespace

void Histogram::record(double v) {
    const swh::LockGuard lock(mu_);
    stats_.add(v);
    ++buckets_[static_cast<std::size_t>(bucket_index(v))];
}

std::uint64_t Histogram::count() const {
    const swh::LockGuard lock(mu_);
    return stats_.count();
}

HistogramSummary Histogram::summary(std::string name) const {
    const swh::LockGuard lock(mu_);
    HistogramSummary s;
    s.name = std::move(name);
    s.count = stats_.count();
    s.min = stats_.min();
    s.max = stats_.max();
    s.mean = stats_.mean();
    s.stdev = stats_.stdev();
    s.p50 = estimate_percentile(buckets_, s.count, 50.0, s.min, s.max);
    s.p90 = estimate_percentile(buckets_, s.count, 90.0, s.min, s.max);
    s.p95 = estimate_percentile(buckets_, s.count, 95.0, s.min, s.max);
    s.p99 = estimate_percentile(buckets_, s.count, 99.0, s.min, s.max);
    for (int i = 0; i < kBuckets; ++i) {
        if (buckets_[static_cast<std::size_t>(i)] > 0) {
            s.buckets.push_back(HistogramSummary::Bucket{
                i + kMinExp, buckets_[static_cast<std::size_t>(i)]});
        }
    }
    return s;
}

Counter& MetricsRegistry::counter(const std::string& name) {
    const swh::LockGuard lock(mu_);
    return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
    const swh::LockGuard lock(mu_);
    return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
    const swh::LockGuard lock(mu_);
    return histograms_[name];
}

MetricsSnapshot MetricsRegistry::snapshot() const {
    const swh::LockGuard lock(mu_);
    MetricsSnapshot out;
    out.counters.reserve(counters_.size());
    for (const auto& [name, c] : counters_) {
        out.counters.emplace_back(name, c.value());
    }
    out.gauges.reserve(gauges_.size());
    for (const auto& [name, g] : gauges_) {
        out.gauges.emplace_back(name, g.value());
    }
    out.histograms.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) {
        out.histograms.push_back(h.summary(name));
    }
    return out;
}

std::uint64_t MetricsSnapshot::counter(const std::string& name) const {
    for (const auto& [n, v] : counters) {
        if (n == name) return v;
    }
    return 0;
}

const HistogramSummary* MetricsSnapshot::histogram(
    const std::string& name) const {
    for (const HistogramSummary& h : histograms) {
        if (h.name == name) return &h;
    }
    return nullptr;
}

namespace {

void json_string(std::ostringstream& os, const std::string& s) {
    os << '"';
    for (const char c : s) {
        if (c == '"' || c == '\\') os << '\\';
        os << c;
    }
    os << '"';
}

void json_number(std::ostringstream& os, double v) {
    if (!std::isfinite(v)) {
        os << "null";
        return;
    }
    // Shortest round-trippable-ish form without trailing-zero noise.
    std::ostringstream tmp;
    tmp.precision(12);
    tmp << v;
    os << tmp.str();
}

}  // namespace

std::string MetricsSnapshot::to_json() const {
    std::ostringstream os;
    os << "{\n  \"counters\": {";
    for (std::size_t i = 0; i < counters.size(); ++i) {
        os << (i == 0 ? "\n    " : ",\n    ");
        json_string(os, counters[i].first);
        os << ": " << counters[i].second;
    }
    os << "\n  },\n  \"gauges\": {";
    for (std::size_t i = 0; i < gauges.size(); ++i) {
        os << (i == 0 ? "\n    " : ",\n    ");
        json_string(os, gauges[i].first);
        os << ": ";
        json_number(os, gauges[i].second);
    }
    os << "\n  },\n  \"histograms\": {";
    for (std::size_t i = 0; i < histograms.size(); ++i) {
        const HistogramSummary& h = histograms[i];
        os << (i == 0 ? "\n    " : ",\n    ");
        json_string(os, h.name);
        os << ": {\"count\": " << h.count;
        for (const auto& [key, v] :
             {std::pair<const char*, double>{"min", h.min},
              {"max", h.max},
              {"mean", h.mean},
              {"stdev", h.stdev},
              {"p50", h.p50},
              {"p90", h.p90},
              {"p95", h.p95},
              {"p99", h.p99}}) {
            os << ", \"" << key << "\": ";
            json_number(os, v);
        }
        os << ", \"buckets\": [";
        for (std::size_t b = 0; b < h.buckets.size(); ++b) {
            if (b > 0) os << ", ";
            os << '[' << h.buckets[b].exp2 << ", " << h.buckets[b].count
               << ']';
        }
        os << "]}";
    }
    os << "\n  }\n}\n";
    return os.str();
}

}  // namespace swh::obs

#include "obs/dashboard.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <sstream>

#include "obs/gantt.hpp"
#include "util/str.hpp"

namespace swh::obs {

namespace {

/// "sched.pe.<id>.<leaf>" -> id, or -1 when the name has another shape.
long pe_id_of(const std::string& name, const char* leaf) {
    const std::string prefix = "sched.pe.";
    const std::string suffix = std::string(".") + leaf;
    if (name.size() <= prefix.size() + suffix.size()) return -1;
    if (name.compare(0, prefix.size(), prefix) != 0) return -1;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
        0) {
        return -1;
    }
    const std::string mid =
        name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
    if (mid.empty()) return -1;
    for (const char c : mid) {
        if (c < '0' || c > '9') return -1;
    }
    return std::strtol(mid.c_str(), nullptr, 10);
}

}  // namespace

std::string render_dashboard(const MetricsSnapshot& snapshot,
                             const DashboardOptions& options) {
    std::map<long, double> rate_gcups;
    for (const auto& [name, value] : snapshot.gauges) {
        const long pe = pe_id_of(name, "rate_cps");
        if (pe >= 0) rate_gcups[pe] = value / 1e9;
    }
    std::map<long, std::uint64_t> accepted;
    for (const auto& [name, value] : snapshot.counters) {
        const long pe = pe_id_of(name, "accepted");
        if (pe >= 0) accepted[pe] = value;
    }

    std::ostringstream os;
    os << "t=" << format_double(options.elapsed_s, 1) << "s  pes "
       << rate_gcups.size() << "  accepted "
       << snapshot.counter("sched.completions_accepted") << "  discarded "
       << snapshot.counter("sched.completions_discarded") << "  replicas "
       << snapshot.counter("sched.replicas_issued") << "  dropped "
       << snapshot.counter("obs.trace.dropped") << '\n';

    // Instantaneous rate imbalance (max/mean of the PEs currently
    // reporting) — the live proxy for the post-run busy-time ratio.
    double max_rate = 0.0;
    double sum_rate = 0.0;
    std::size_t active = 0;
    for (const auto& [pe, rate] : rate_gcups) {
        if (rate <= 0.0) continue;
        max_rate = std::max(max_rate, rate);
        sum_rate += rate;
        ++active;
    }
    if (active > 0) {
        const double mean = sum_rate / static_cast<double>(active);
        os << "rate " << format_double(sum_rate, 2) << " GCUPS aggregate,"
           << " imbalance " << format_double(max_rate / mean, 2) << " (max/"
           << "mean over " << active << " active)\n";
    }

    // Funnel state, when the CPU engine's prefilter is live.
    for (const auto& [name, value] : snapshot.gauges) {
        if (name == "engine.cpu.filter.tau" && value > 0.0) {
            const std::uint64_t cohorts =
                snapshot.counter("engine.cpu.filter.cohorts");
            const std::uint64_t pruned =
                snapshot.counter("engine.cpu.filter.pruned");
            os << "funnel tau " << format_double(value, 0);
            if (cohorts > 0) {
                os << "  pruned "
                   << format_double(100.0 * static_cast<double>(pruned) /
                                        static_cast<double>(cohorts),
                                    1)
                   << "% of cohort lanes";
            }
            os << '\n';
        }
    }
    if (const HistogramSummary* depth =
            snapshot.histogram("channel.master_inbox.depth");
        depth != nullptr && depth->count > 0) {
        os << "master inbox depth p50 " << format_double(depth->p50, 1)
           << "  p99 " << format_double(depth->p99, 1) << '\n';
    }

    if (!rate_gcups.empty()) {
        double full_scale = options.full_scale_gcups;
        if (full_scale <= 0.0) full_scale = std::max(max_rate, 1e-9);
        const std::size_t cols = std::max<std::size_t>(options.bar_columns, 8);
        std::vector<GanttSpan> bars;
        std::vector<std::string> labels;
        for (const auto& [pe, rate] : rate_gcups) {
            const std::size_t row = labels.size();
            const auto id = static_cast<std::size_t>(pe);
            std::string label = id < options.pe_labels.size() &&
                                        !options.pe_labels[id].empty()
                                    ? options.pe_labels[id]
                                    : "pe" + std::to_string(pe);
            label += " " + format_double(rate, 2);
            if (const auto it = accepted.find(pe); it != accepted.end()) {
                label += " (" + std::to_string(it->second) + " acc)";
            }
            labels.push_back(std::move(label));
            bars.push_back(GanttSpan{row, static_cast<std::uint64_t>(pe), 0.0,
                                     std::min(rate, full_scale), false});
        }
        os << render_gantt(bars, labels,
                           full_scale / static_cast<double>(cols), "GCUPS");
    }
    return os.str();
}

}  // namespace swh::obs

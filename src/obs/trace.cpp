#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "obs/gantt.hpp"
#include "util/error.hpp"

namespace swh::obs {

const char* to_string(EventKind kind) {
    switch (kind) {
        case EventKind::SlaveRegistered: return "slave_registered";
        case EventKind::SlaveDeregistered: return "slave_deregistered";
        case EventKind::PackageSized: return "package_sized";
        case EventKind::TaskAssigned: return "task_assigned";
        case EventKind::ReplicaIssued: return "replica_issued";
        case EventKind::Progress: return "progress";
        case EventKind::RateError: return "rate_error";
        case EventKind::CompletedAccepted: return "completed_accepted";
        case EventKind::CompletedDiscarded: return "completed_discarded";
        case EventKind::TaskCancelled: return "task_cancelled";
        case EventKind::TaskFailed: return "task_failed";
        case EventKind::SlavePresumedDead: return "slave_presumed_dead";
        case EventKind::ChannelSend: return "channel_send";
        case EventKind::ChannelRecv: return "channel_recv";
        case EventKind::SpanBegin: return "span_begin";
        case EventKind::SpanEnd: return "span_end";
    }
    return "unknown";
}

Trace TraceRecorder::drain() const {
    const swh::LockGuard lock(mu_);
    Trace out;
    out.lanes.reserve(lanes_.size());
    for (const auto& lane : lanes_) {
        TraceLaneData data;
        data.label = lane->label_;
        data.events = lane->ring_.to_vector();
        data.dropped = lane->dropped_;
        out.lanes.push_back(std::move(data));
    }
    return out;
}

std::uint64_t TraceRecorder::dropped_total() const {
    const swh::LockGuard lock(mu_);
    std::uint64_t n = 0;
    for (const auto& lane : lanes_) n += lane->dropped_;
    return n;
}

namespace {

void json_escape(std::ostream& os, const char* s) {
    os << '"';
    for (; *s != '\0'; ++s) {
        const char c = *s;
        switch (c) {
            case '"': os << "\\\""; break;
            case '\\': os << "\\\\"; break;
            case '\n': os << "\\n"; break;
            case '\t': os << "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    os << buf;
                } else {
                    os << c;
                }
        }
    }
    os << '"';
}

void json_escape(std::ostream& os, const std::string& s) {
    json_escape(os, s.c_str());
}

/// Microsecond timestamp, the unit the trace-event format mandates.
long long us(double t_seconds) {
    return static_cast<long long>(t_seconds * 1e6);
}

void write_common(std::ostream& os, const char* ph, double t,
                  std::size_t tid) {
    os << "\"ph\":\"" << ph << "\",\"ts\":" << us(t)
       << ",\"pid\":0,\"tid\":" << tid;
}

void write_args(std::ostream& os, const TraceEvent& e) {
    os << ",\"args\":{";
    bool first = true;
    auto field = [&](const char* key, auto value) {
        if (!first) os << ',';
        first = false;
        os << '"' << key << "\":" << value;
    };
    if (e.pe != core::kInvalidPe) field("pe", e.pe);
    if (e.task != kNoTask) field("task", e.task);
    field("value", e.value);
    os << '}';
}

}  // namespace

void export_chrome_json(const Trace& trace, std::ostream& os) {
    os << "{\"traceEvents\":[";
    bool first = true;
    auto begin_event = [&] {
        if (!first) os << ',';
        first = false;
        os << "\n{";
    };

    for (std::size_t tid = 0; tid < trace.lanes.size(); ++tid) {
        begin_event();
        os << "\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":"
           << tid << ",\"args\":{\"name\":";
        json_escape(os, trace.lanes[tid].label);
        os << "}}";
    }

    for (std::size_t tid = 0; tid < trace.lanes.size(); ++tid) {
        const TraceLaneData& lane = trace.lanes[tid];
        for (const TraceEvent& e : lane.events) {
            begin_event();
            os << "\"name\":";
            json_escape(os, e.name != nullptr ? e.name : to_string(e.kind));
            os << ',';
            switch (e.kind) {
                case EventKind::SpanBegin:
                    os << "\"cat\":\"span\",";
                    write_common(os, "B", e.t, tid);
                    write_args(os, e);
                    break;
                case EventKind::SpanEnd:
                    os << "\"cat\":\"span\",";
                    write_common(os, "E", e.t, tid);
                    write_args(os, e);
                    break;
                case EventKind::ChannelSend:
                case EventKind::ChannelRecv:
                    // Counter track: Perfetto plots queue depth over time.
                    os << "\"cat\":\"channel\",";
                    write_common(os, "C", e.t, tid);
                    os << ",\"args\":{\"depth\":" << e.value << '}';
                    break;
                default:
                    os << "\"cat\":\"sched\",";
                    write_common(os, "i", e.t, tid);
                    os << ",\"s\":\"t\"";
                    write_args(os, e);
            }
            os << '}';
        }
    }
    // Truncation must be visible in the artifact itself: a trace whose
    // rings overflowed is otherwise indistinguishable from a short run.
    os << "\n],\"otherData\":{\"dropped_events\":\"" << trace.total_dropped()
       << "\"}}\n";
}

std::string chrome_json(const Trace& trace) {
    std::ostringstream os;
    export_chrome_json(trace, os);
    return os.str();
}

void export_csv(const Trace& trace, std::ostream& os) {
    os << "lane,label,t_seconds,kind,pe,task,value,name\n";
    for (std::size_t tid = 0; tid < trace.lanes.size(); ++tid) {
        const TraceLaneData& lane = trace.lanes[tid];
        for (const TraceEvent& e : lane.events) {
            os << tid << ',' << lane.label << ',' << e.t << ','
               << to_string(e.kind) << ',';
            if (e.pe != core::kInvalidPe) os << e.pe;
            os << ',';
            if (e.task != kNoTask) os << e.task;
            os << ',' << e.value << ','
               << (e.name != nullptr ? e.name : "") << '\n';
        }
    }
    // Footer comment (ignored by CSV readers that strip '#' lines) so a
    // truncated export carries its own health record.
    os << "# dropped_events," << trace.total_dropped() << '\n';
}

std::string render_trace_gantt(const Trace& trace, double time_step) {
    std::string header;
    if (const std::uint64_t dropped = trace.total_dropped(); dropped > 0) {
        header = "!! trace dropped " + std::to_string(dropped) +
                 " event(s) (ring overflow) — chart may be truncated\n";
    }
    std::vector<GanttSpan> spans;
    std::vector<std::string> labels;
    for (const TraceLaneData& lane : trace.lanes) {
        // Pair begins with ends (spans only nest, so a stack suffices).
        // An unmatched begin (run cut short) renders as aborted, ending
        // at the lane's last event.
        std::vector<const TraceEvent*> open;
        std::vector<GanttSpan> mine;
        const std::size_t row = labels.size();
        double last_t = 0.0;
        for (const TraceEvent& e : lane.events) {
            last_t = std::max(last_t, e.t);
            if (e.kind == EventKind::SpanBegin) {
                open.push_back(&e);
            } else if (e.kind == EventKind::SpanEnd && !open.empty()) {
                const TraceEvent* b = open.back();
                open.pop_back();
                mine.push_back(
                    GanttSpan{row, b->task, b->t, e.t, e.value != 0.0});
            }
        }
        for (const TraceEvent* b : open) {
            mine.push_back(GanttSpan{row, b->task, b->t, last_t, true});
        }
        if (mine.empty()) continue;  // lane has no spans: no chart row
        labels.push_back(lane.label);
        spans.insert(spans.end(), mine.begin(), mine.end());
    }
    return header + render_gantt(spans, labels, time_step);
}

}  // namespace swh::obs

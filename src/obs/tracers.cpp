#include "obs/tracers.hpp"

#include <cmath>

namespace swh::obs {

SchedTracer::SchedTracer(TraceLane* lane, MetricsRegistry* metrics)
    : lane_(lane), metrics_(metrics) {
    if (metrics != nullptr) {
        packages_ = &metrics->counter("sched.packages");
        replicas_ = &metrics->counter("sched.replicas_issued");
        accepted_ = &metrics->counter("sched.completions_accepted");
        discarded_ = &metrics->counter("sched.completions_discarded");
        cancelled_ = &metrics->counter("sched.tasks_cancelled");
        failed_ = &metrics->counter("sched.task_failures");
        abandoned_ = &metrics->counter("sched.tasks_abandoned");
        package_size_ = &metrics->histogram("sched.package_size");
        rate_error_ = &metrics->histogram("sched.rate_estimate_rel_error");
    }
}

SchedTracer::PeHandles& SchedTracer::pe_handles(core::PeId pe) {
    const auto i = static_cast<std::size_t>(pe);
    if (i >= per_pe_.size()) per_pe_.resize(i + 1);
    PeHandles& h = per_pe_[i];
    if (metrics_ != nullptr && h.rate == nullptr) {
        const std::string base = "sched.pe." + std::to_string(pe) + ".";
        h.rate = &metrics_->gauge(base + "rate_cps");
        h.accepted = &metrics_->counter(base + "accepted");
        h.assigned = &metrics_->counter(base + "assigned");
    }
    return h;
}

void SchedTracer::on_slave_registered(core::PeId pe, core::PeKind kind) {
    if (lane_ != nullptr) {
        lane_->emit(EventKind::SlaveRegistered, pe, kNoTask,
                    static_cast<double>(kind), core::to_string(kind));
    }
    // Registration is rare and already off the hot path, so this is the
    // one place per-PE handles get allocated.
    if (metrics_ != nullptr) pe_handles(pe);
}

void SchedTracer::on_slave_deregistered(core::PeId pe, double now) {
    (void)now;
    if (lane_ != nullptr) lane_->emit(EventKind::SlaveDeregistered, pe);
}

void SchedTracer::on_package_sized(core::PeId pe, std::size_t tasks,
                                   bool replica, double now) {
    (void)now;
    (void)replica;
    if (lane_ != nullptr) {
        lane_->emit(EventKind::PackageSized, pe, kNoTask,
                    static_cast<double>(tasks));
    }
    if (packages_ != nullptr) packages_->add();
    if (package_size_ != nullptr) {
        package_size_->record(static_cast<double>(tasks));
    }
}

void SchedTracer::on_task_assigned(core::PeId pe, core::TaskId task,
                                   double now) {
    (void)now;
    if (lane_ != nullptr) lane_->emit(EventKind::TaskAssigned, pe, task);
    if (metrics_ != nullptr) pe_handles(pe).assigned->add();
}

void SchedTracer::on_replica_issued(core::PeId pe, core::TaskId task,
                                    double now) {
    (void)now;
    if (lane_ != nullptr) lane_->emit(EventKind::ReplicaIssued, pe, task);
    if (replicas_ != nullptr) replicas_->add();
}

void SchedTracer::on_progress(core::PeId pe, double now,
                              double cells_per_second,
                              double prior_estimate) {
    (void)now;
    if (lane_ != nullptr) {
        lane_->emit(EventKind::Progress, pe, kNoTask, cells_per_second);
    }
    if (metrics_ != nullptr) pe_handles(pe).rate->set(cells_per_second);
    // The estimate the master was steering by, scored against what the
    // slave then actually delivered (paper SS IV-A.2's whole premise).
    if (cells_per_second > 0.0 && prior_estimate > 0.0) {
        const double err =
            std::abs(prior_estimate - cells_per_second) / cells_per_second;
        if (lane_ != nullptr) {
            lane_->emit(EventKind::RateError, pe, kNoTask, err);
        }
        if (rate_error_ != nullptr) rate_error_->record(err);
    }
}

void SchedTracer::on_task_completed(core::PeId pe, core::TaskId task,
                                    bool accepted, double now) {
    (void)now;
    if (lane_ != nullptr) {
        lane_->emit(accepted ? EventKind::CompletedAccepted
                             : EventKind::CompletedDiscarded,
                    pe, task);
    }
    if (accepted) {
        if (accepted_ != nullptr) accepted_->add();
        if (metrics_ != nullptr) pe_handles(pe).accepted->add();
    } else {
        if (discarded_ != nullptr) discarded_->add();
    }
}

void SchedTracer::on_task_cancelled(core::PeId pe, core::TaskId task,
                                    double now) {
    (void)now;
    if (lane_ != nullptr) lane_->emit(EventKind::TaskCancelled, pe, task);
    if (cancelled_ != nullptr) cancelled_->add();
}

void SchedTracer::on_task_failed(core::PeId pe, core::TaskId task,
                                 bool abandoned, double now) {
    (void)now;
    if (lane_ != nullptr) {
        lane_->emit(EventKind::TaskFailed, pe, task, abandoned ? 1.0 : 0.0);
    }
    if (failed_ != nullptr) failed_->add();
    if (abandoned && abandoned_ != nullptr) abandoned_->add();
}

}  // namespace swh::obs

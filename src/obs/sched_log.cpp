#include "obs/sched_log.hpp"

#include <cmath>
#include <ostream>
#include <sstream>

namespace swh::obs {

namespace {

std::string pe_label(core::PeId pe, std::span<const std::string> labels) {
    const auto i = static_cast<std::size_t>(pe);
    if (i < labels.size() && !labels[i].empty()) return labels[i];
    return "pe" + std::to_string(pe);
}

}  // namespace

void WeightLog::export_csv(std::ostream& os,
                           std::span<const std::string> pe_labels) const {
    os << "pe,label,t_seconds,realised_cps,estimate_cps,rel_error\n";
    for (const WeightSample& s : samples_) {
        os << s.pe << ',' << pe_label(s.pe, pe_labels) << ',' << s.t << ','
           << s.realised_cps << ',' << s.prior_estimate_cps << ',';
        if (s.realised_cps > 0.0 && s.prior_estimate_cps > 0.0) {
            os << std::abs(s.prior_estimate_cps - s.realised_cps) /
                      s.realised_cps;
        }
        os << '\n';
    }
}

std::string WeightLog::csv(std::span<const std::string> pe_labels) const {
    std::ostringstream os;
    export_csv(os, pe_labels);
    return os.str();
}

std::string WeightLog::to_json(std::span<const std::string> pe_labels) const {
    std::ostringstream os;
    os << "[";
    for (std::size_t i = 0; i < samples_.size(); ++i) {
        const WeightSample& s = samples_[i];
        os << (i == 0 ? "\n" : ",\n");
        os << "  {\"pe\": " << s.pe << ", \"label\": \""
           << pe_label(s.pe, pe_labels) << "\", \"t\": " << s.t
           << ", \"realised_cps\": " << s.realised_cps
           << ", \"estimate_cps\": " << s.prior_estimate_cps << '}';
    }
    os << "\n]\n";
    return os.str();
}

}  // namespace swh::obs

#include "obs/balance.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "util/str.hpp"
#include "util/table.hpp"

namespace swh::obs {

namespace {

/// A paired top-level task span of one lane, the unit both the time
/// decomposition and the critical chain operate on (nested kernel
/// spans are charged to their enclosing task).
struct FlatSpan {
    std::size_t lane = 0;
    core::PeId pe = core::kInvalidPe;
    core::TaskId task = kNoTask;
    double start = 0.0;
    double end = 0.0;
    bool aborted = false;
};

/// Pairs SpanBegin/SpanEnd with a stack (spans only nest) and keeps the
/// depth-0 pairs. An unmatched begin (run cut short) closes at the
/// lane's last timestamp, aborted.
std::vector<FlatSpan> top_level_spans(const TraceLaneData& lane,
                                      std::size_t lane_index) {
    std::vector<FlatSpan> out;
    std::vector<const TraceEvent*> open;
    double last_t = 0.0;
    for (const TraceEvent& e : lane.events) {
        last_t = std::max(last_t, e.t);
        if (e.kind == EventKind::SpanBegin) {
            open.push_back(&e);
        } else if (e.kind == EventKind::SpanEnd && !open.empty()) {
            const TraceEvent* b = open.back();
            open.pop_back();
            if (open.empty()) {
                const core::PeId pe =
                    b->pe != core::kInvalidPe ? b->pe : e.pe;
                out.push_back(FlatSpan{lane_index, pe, b->task, b->t, e.t,
                                       e.value != 0.0});
            }
        }
    }
    if (!open.empty()) {
        // Only the outermost unmatched begin is a top-level span.
        const TraceEvent* b = open.front();
        out.push_back(
            FlatSpan{lane_index, b->pe, b->task, b->t, last_t, true});
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const FlatSpan& a, const FlatSpan& b) {
                         return a.start < b.start;
                     });
    return out;
}

/// Integrates the lane's Progress-rate samples into a cell count, the
/// fallback attribution when the caller has no exact totals. Each
/// sample reports the mean rate since the previous one; the first
/// sample's window opens at the lane's first span begin.
double integrate_progress_cells(const TraceLaneData& lane,
                                double first_span_start) {
    double cells = 0.0;
    double prev_t = first_span_start;
    bool any = false;
    for (const TraceEvent& e : lane.events) {
        if (e.kind != EventKind::Progress) continue;
        const double dt = e.t - prev_t;
        if (dt > 0.0) cells += e.value * dt;
        prev_t = e.t;
        any = true;
    }
    return any ? cells : 0.0;
}

std::string pct(double num, double den) {
    return format_double(den > 0.0 ? 100.0 * num / den : 0.0, 1);
}

}  // namespace

BalanceReport analyze_balance(const Trace& trace,
                              const BalanceOptions& options) {
    BalanceReport rep;
    rep.events_analyzed = trace.total_events();
    rep.dropped_events = trace.total_dropped();

    // Assignment timeline per (pe, task), from whichever lane carries
    // the scheduler's decisions (the master lane / SchedEventLog).
    std::map<std::pair<core::PeId, core::TaskId>, std::vector<double>>
        assigns;
    std::map<core::PeId, std::size_t> replicas_by_pe;
    double horizon = 0.0;
    for (const TraceLaneData& lane : trace.lanes) {
        for (const TraceEvent& e : lane.events) {
            horizon = std::max(horizon, e.t);
            if (e.kind == EventKind::TaskAssigned ||
                e.kind == EventKind::ReplicaIssued) {
                assigns[{e.pe, e.task}].push_back(e.t);
                if (e.kind == EventKind::ReplicaIssued) {
                    ++replicas_by_pe[e.pe];
                }
            }
        }
    }
    for (auto& [key, times] : assigns) std::sort(times.begin(), times.end());
    if (options.horizon_s > 0.0) horizon = options.horizon_s;
    rep.horizon_s = horizon;

    // Per-PE decomposition over each span-carrying lane.
    std::vector<FlatSpan> all_spans;
    for (std::size_t li = 0; li < trace.lanes.size(); ++li) {
        const TraceLaneData& lane = trace.lanes[li];
        const std::vector<FlatSpan> spans = top_level_spans(lane, li);
        if (spans.empty()) continue;

        BalancePe pe;
        pe.label = lane.label;
        pe.pe = spans.front().pe;
        pe.first_start_s = spans.front().start;
        double prev_end = 0.0;
        for (const FlatSpan& s : spans) {
            pe.busy_s += s.end - s.start;
            pe.last_end_s = std::max(pe.last_end_s, s.end);
            if (s.aborted) {
                ++pe.tasks_aborted;
            } else {
                ++pe.tasks_accepted;
            }
            // Dispatch gap: the slice of the inter-span gap after the
            // assignment landed. Without an assignment record the gap
            // is plain idle (the PE was starved, not waiting on the
            // wire).
            const auto it = assigns.find({s.pe, s.task});
            if (it != assigns.end()) {
                double assign_t = -1.0;
                for (const double t : it->second) {
                    if (t <= s.start) assign_t = t;
                }
                if (assign_t >= 0.0) {
                    const double gap = s.start - prev_end;
                    const double comm = s.start - std::max(assign_t, prev_end);
                    pe.comm_s += std::clamp(comm, 0.0, std::max(gap, 0.0));
                }
            }
            prev_end = std::max(prev_end, s.end);
        }
        pe.idle_s = std::max(0.0, horizon - pe.busy_s - pe.comm_s);
        if (const auto rit = replicas_by_pe.find(pe.pe);
            rit != replicas_by_pe.end()) {
            pe.replicas_received = rit->second;
        }

        pe.cells = 0.0;
        bool attributed = false;
        for (const auto& [label, cells] : options.cells_by_label) {
            if (label == lane.label) {
                pe.cells = cells;
                attributed = true;
                break;
            }
        }
        if (!attributed) {
            pe.cells = integrate_progress_cells(lane, pe.first_start_s);
        }
        pe.cells_per_second = pe.busy_s > 0.0 ? pe.cells / pe.busy_s : 0.0;

        rep.pes.push_back(std::move(pe));
        all_spans.insert(all_spans.end(), spans.begin(), spans.end());
    }

    rep.pe_count = rep.pes.size();
    double max_busy = 0.0;
    for (const BalancePe& pe : rep.pes) {
        rep.total_busy_s += pe.busy_s;
        rep.total_comm_s += pe.comm_s;
        rep.total_idle_s += pe.idle_s;
        max_busy = std::max(max_busy, pe.busy_s);
    }
    if (rep.pe_count > 0) {
        const double mean_busy =
            rep.total_busy_s / static_cast<double>(rep.pe_count);
        rep.ideal_makespan_s = mean_busy;
        rep.imbalance_ratio = mean_busy > 0.0 ? max_busy / mean_busy : 0.0;
        rep.efficiency = horizon > 0.0 ? mean_busy / horizon : 0.0;
    }

    // Straggler: latest last completion; the tail is what a perfect
    // placement of that final work could have clawed back.
    for (std::size_t i = 0; i < rep.pes.size(); ++i) {
        if (rep.straggler == BalanceReport::kNoStraggler ||
            rep.pes[i].last_end_s > rep.pes[rep.straggler].last_end_s) {
            rep.straggler = i;
        }
    }
    if (rep.straggler != BalanceReport::kNoStraggler) {
        double runner_up = 0.0;
        for (std::size_t i = 0; i < rep.pes.size(); ++i) {
            if (i != rep.straggler) {
                runner_up = std::max(runner_up, rep.pes[i].last_end_s);
            }
        }
        rep.straggler_tail_s =
            rep.pes.size() > 1
                ? std::max(0.0, rep.pes[rep.straggler].last_end_s - runner_up)
                : 0.0;
    }

    // Critical path: greedy backward walk. From the latest-ending span,
    // repeatedly step to the latest span that finished by the time the
    // current one started; a gap beyond the tolerance means the current
    // span was arrival-bound (nothing upstream was holding it up), so
    // the chain starts there. Ties break deterministically on
    // (end, lane, task, start).
    rep.gap_tolerance_s = options.gap_tolerance_s > 0.0
                              ? options.gap_tolerance_s
                              : 0.05 * horizon;
    if (!all_spans.empty()) {
        auto later = [](const FlatSpan& a, const FlatSpan& b) {
            if (a.end != b.end) return a.end > b.end;
            if (a.lane != b.lane) return a.lane < b.lane;
            if (a.task != b.task) return a.task < b.task;
            return a.start < b.start;
        };
        const double eps = 1e-9 * std::max(horizon, 1.0);
        const FlatSpan* cur = &*std::min_element(
            all_spans.begin(), all_spans.end(), later);
        std::vector<CriticalStep> chain;
        double wait_below = 0.0;  // gap bridged into the step below
        while (cur != nullptr) {
            chain.push_back(CriticalStep{cur->pe, cur->lane, cur->task,
                                         cur->start, cur->end, 0.0});
            if (chain.size() >= 2) chain[chain.size() - 2].wait_s = wait_below;
            const FlatSpan* pred = nullptr;
            for (const FlatSpan& s : all_spans) {
                if (s.end > cur->start + eps) continue;
                if (pred == nullptr || later(s, *pred)) pred = &s;
            }
            if (pred == nullptr ||
                cur->start - pred->end > rep.gap_tolerance_s) {
                break;
            }
            wait_below = std::max(0.0, cur->start - pred->end);
            cur = pred;
        }
        std::reverse(chain.begin(), chain.end());
        rep.critical_path = std::move(chain);
        rep.critical_path_s =
            rep.critical_path.back().end_s - rep.critical_path.front().start_s;
        rep.critical_coverage =
            horizon > 0.0 ? rep.critical_path_s / horizon : 0.0;
    }
    return rep;
}

std::string BalanceReport::to_text() const {
    std::ostringstream os;
    os << "balance: horizon " << format_double(horizon_s, 3) << "s, "
       << pe_count << " PEs, imbalance " << format_double(imbalance_ratio, 3)
       << ", efficiency " << format_double(efficiency, 3)
       << ", ideal makespan " << format_double(ideal_makespan_s, 3) << "s\n";
    os << "critical path: " << format_double(critical_path_s, 3) << "s ("
       << pct(critical_path_s, horizon_s) << "% of horizon, "
       << critical_path.size() << " steps, gap tolerance "
       << format_double(gap_tolerance_s, 3) << "s)";
    if (!critical_path.empty()) {
        os << "  tail:";
        const std::size_t show = std::min<std::size_t>(6, critical_path.size());
        for (std::size_t i = critical_path.size() - show;
             i < critical_path.size(); ++i) {
            const CriticalStep& s = critical_path[i];
            os << ' ' << (i > critical_path.size() - show ? "-> " : "")
               << "pe" << s.pe << ":t" << s.task;
        }
    }
    os << '\n';
    if (straggler != kNoStraggler) {
        os << "straggler: " << pes[straggler].label << " (finishes +"
           << format_double(straggler_tail_s, 3) << "s after runner-up)\n";
    }
    TextTable table({"pe", "label", "busy_s", "busy%", "comm%", "idle%",
                     "gcups", "acc", "abort", "repl"});
    for (const BalancePe& pe : pes) {
        table.add_row({std::to_string(pe.pe), pe.label,
                       format_double(pe.busy_s, 3), pct(pe.busy_s, horizon_s),
                       pct(pe.comm_s, horizon_s), pct(pe.idle_s, horizon_s),
                       format_double(pe.cells_per_second / 1e9, 3),
                       std::to_string(pe.tasks_accepted),
                       std::to_string(pe.tasks_aborted),
                       std::to_string(pe.replicas_received)});
    }
    os << table.render();
    os << "events " << events_analyzed << "  dropped " << dropped_events
       << '\n';
    return os.str();
}

std::string BalanceReport::to_json() const {
    std::ostringstream os;
    auto num = [&](double v) {
        if (std::isfinite(v)) {
            std::ostringstream tmp;
            tmp.precision(12);
            tmp << v;
            os << tmp.str();
        } else {
            os << "null";
        }
    };
    os << "{\n  \"horizon_s\": ";
    num(horizon_s);
    os << ",\n  \"pe_count\": " << pe_count;
    os << ",\n  \"total_busy_s\": ";
    num(total_busy_s);
    os << ",\n  \"total_comm_s\": ";
    num(total_comm_s);
    os << ",\n  \"total_idle_s\": ";
    num(total_idle_s);
    os << ",\n  \"ideal_makespan_s\": ";
    num(ideal_makespan_s);
    os << ",\n  \"imbalance_ratio\": ";
    num(imbalance_ratio);
    os << ",\n  \"efficiency\": ";
    num(efficiency);
    os << ",\n  \"straggler\": ";
    if (straggler != kNoStraggler) {
        os << '"' << pes[straggler].label << '"';
    } else {
        os << "null";
    }
    os << ",\n  \"straggler_tail_s\": ";
    num(straggler_tail_s);
    os << ",\n  \"critical_path_s\": ";
    num(critical_path_s);
    os << ",\n  \"critical_coverage\": ";
    num(critical_coverage);
    os << ",\n  \"gap_tolerance_s\": ";
    num(gap_tolerance_s);
    os << ",\n  \"events_analyzed\": " << events_analyzed;
    os << ",\n  \"dropped_events\": " << dropped_events;
    os << ",\n  \"pes\": [";
    for (std::size_t i = 0; i < pes.size(); ++i) {
        const BalancePe& pe = pes[i];
        os << (i == 0 ? "\n" : ",\n");
        os << "    {\"pe\": " << pe.pe << ", \"label\": \"" << pe.label
           << "\", \"busy_s\": ";
        num(pe.busy_s);
        os << ", \"comm_s\": ";
        num(pe.comm_s);
        os << ", \"idle_s\": ";
        num(pe.idle_s);
        os << ", \"cells\": ";
        num(pe.cells);
        os << ", \"cells_per_second\": ";
        num(pe.cells_per_second);
        os << ", \"tasks_accepted\": " << pe.tasks_accepted
           << ", \"tasks_aborted\": " << pe.tasks_aborted
           << ", \"replicas_received\": " << pe.replicas_received << '}';
    }
    os << "\n  ],\n  \"critical_path\": [";
    for (std::size_t i = 0; i < critical_path.size(); ++i) {
        const CriticalStep& s = critical_path[i];
        os << (i == 0 ? "\n" : ",\n");
        os << "    {\"pe\": " << s.pe << ", \"lane\": " << s.lane
           << ", \"task\": ";
        if (s.task != kNoTask) {
            os << s.task;
        } else {
            os << "null";
        }
        os << ", \"start_s\": ";
        num(s.start_s);
        os << ", \"end_s\": ";
        num(s.end_s);
        os << ", \"wait_s\": ";
        num(s.wait_s);
        os << '}';
    }
    os << "\n  ]\n}\n";
    return os.str();
}

}  // namespace swh::obs

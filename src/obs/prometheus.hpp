#pragma once

// Prometheus text exposition (format 0.0.4) of a MetricsSnapshot, the
// scrape surface a long-lived resident process exposes. Dotted metric
// names sanitise to underscores under a configurable prefix; counters
// gain the conventional `_total` suffix; log2-bucket histograms export
// as native Prometheus histograms (cumulative `_bucket{le=...}` series
// with power-of-two upper bounds, plus `_sum`/`_count`) and carry the
// estimated quantiles as separate gauges for dashboards that want them
// without server-side histogram_quantile().

#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"

namespace swh::obs {

void export_prometheus(const MetricsSnapshot& snapshot, std::ostream& os,
                       const std::string& prefix = "swh");

std::string prometheus_text(const MetricsSnapshot& snapshot,
                            const std::string& prefix = "swh");

}  // namespace swh::obs

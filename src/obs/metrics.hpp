#pragma once

// Run-level metrics registry: named counters, gauges, and log2-bucket
// histograms, built for concurrent recording from master + slave +
// engine-worker threads. Creation (name lookup) takes the registry
// mutex — resolve metric handles once, outside hot loops; recording is
// an atomic op (counter/gauge) or a short critical section (histogram).
// snapshot() produces a plain MetricsSnapshot that RunReport carries
// and that serialises to JSON.

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/annotations.hpp"
#include "util/stats.hpp"

namespace swh::obs {

class Counter {
public:
    void add(std::uint64_t n = 1) {
        v_.fetch_add(n, std::memory_order_relaxed);
    }
    std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

private:
    std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins sampled value (queue depth, configuration knobs).
class Gauge {
public:
    void set(double v) { v_.store(v, std::memory_order_relaxed); }
    double value() const { return v_.load(std::memory_order_relaxed); }

private:
    std::atomic<double> v_{0.0};
};

/// Exported summary of one histogram. Exact count/min/max/mean/stdev
/// (Welford, util/stats RunningStats); percentiles are estimates
/// interpolated inside the containing power-of-two bucket.
struct HistogramSummary {
    std::string name;
    std::uint64_t count = 0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double stdev = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    struct Bucket {
        int exp2 = 0;  ///< bucket covers [2^exp2, 2^(exp2+1))
        std::uint64_t count = 0;
    };
    std::vector<Bucket> buckets;  ///< non-empty buckets, ascending exp2
};

/// Log2-bucket histogram of non-negative samples. Bucket i covers
/// [2^(i+kMinExp), 2^(i+1+kMinExp)); values at or below 2^kMinExp land
/// in bucket 0, values at or above 2^kMaxExp in the last. The exponent
/// range spans nanoseconds-as-seconds up to multi-billion cell counts.
class Histogram {
public:
    static constexpr int kMinExp = -32;
    static constexpr int kBuckets = 64;

    void record(double v) SWH_EXCLUDES(mu_);

    HistogramSummary summary(std::string name) const SWH_EXCLUDES(mu_);
    std::uint64_t count() const SWH_EXCLUDES(mu_);

private:
    mutable swh::Mutex mu_;
    RunningStats stats_ SWH_GUARDED_BY(mu_);
    std::array<std::uint64_t, kBuckets> buckets_ SWH_GUARDED_BY(mu_){};
};

/// Point-in-time copy of a whole registry; safe to keep after the
/// registry is gone (RunReport embeds one).
struct MetricsSnapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<HistogramSummary> histograms;

    bool empty() const {
        return counters.empty() && gauges.empty() && histograms.empty();
    }

    /// Counter value by exact name; 0 if absent.
    std::uint64_t counter(const std::string& name) const;
    /// Histogram summary by exact name; nullptr if absent.
    const HistogramSummary* histogram(const std::string& name) const;

    std::string to_json() const;
};

class MetricsRegistry {
public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    /// Get-or-create; the returned reference is stable for the
    /// registry's lifetime (node-based storage). Recording through a
    /// handle is synchronised by the metric itself (atomics, or the
    /// histogram's own mutex), not by the registry lock.
    Counter& counter(const std::string& name) SWH_EXCLUDES(mu_);
    Gauge& gauge(const std::string& name) SWH_EXCLUDES(mu_);
    Histogram& histogram(const std::string& name) SWH_EXCLUDES(mu_);

    MetricsSnapshot snapshot() const SWH_EXCLUDES(mu_);

private:
    mutable swh::Mutex mu_;
    std::map<std::string, Counter> counters_ SWH_GUARDED_BY(mu_);
    std::map<std::string, Gauge> gauges_ SWH_GUARDED_BY(mu_);
    std::map<std::string, Histogram> histograms_ SWH_GUARDED_BY(mu_);
};

}  // namespace swh::obs

#pragma once

// Live ASCII balance dashboard: one refresh-in-place frame rendered
// from a MetricsSnapshot (typically delivered by a PeriodicSampler
// while the run is still going). The per-PE rate bars go through the
// same obs::render_gantt renderer as the Fig.-5 charts — a bar is just
// a span [0, rate] on a GCUPS axis — so the watch view and the
// post-run Gantt share one visual language.
//
// Data sources, all optional (missing metrics render as absent lines):
//   sched.pe.<id>.rate_cps     gauge   — latest realised rate per PE
//   sched.pe.<id>.accepted     counter — accepted completions per PE
//   sched.replicas_issued, sched.completions_accepted/discarded
//   engine.cpu.filter.tau      gauge   — current funnel threshold τ
//   engine.cpu.filter.cohorts / .pruned — funnel selectivity
//   channel.master_inbox.depth histogram — master queue depth

#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace swh::obs {

struct DashboardOptions {
    /// Row labels indexed by PeId; unknown PEs render as "pe<N>".
    std::vector<std::string> pe_labels;
    /// Seconds since the run/sampler started (frame header).
    double elapsed_s = 0.0;
    /// Full scale of the rate bars; <= 0 ⇒ auto (max current rate).
    double full_scale_gcups = 0.0;
    /// Bar width in character cells.
    std::size_t bar_columns = 40;
};

/// Renders one frame (plain text, trailing newline). The caller owns
/// cursor control; prepending "\x1b[H\x1b[J" redraws in place.
std::string render_dashboard(const MetricsSnapshot& snapshot,
                             const DashboardOptions& options = {});

}  // namespace swh::obs

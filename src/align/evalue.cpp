#include "align/evalue.hpp"

#include <array>
#include <cmath>
#include <numbers>
#include <vector>

#include "align/sw_scalar.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace swh::align {

namespace {

constexpr double kEulerMascheroni = 0.57721566490153286;

// Robinson & Robinson (1991) background frequencies (same table the
// db:: generator uses; duplicated here because align must not depend on
// db). Order: ARNDCQEGHILKMFPSTWYV.
constexpr std::array<double, 20> kAaFreq = {
    0.07805, 0.05129, 0.04487, 0.05364, 0.01925, 0.04264, 0.06295,
    0.07377, 0.02199, 0.05142, 0.09019, 0.05744, 0.02243, 0.03856,
    0.05203, 0.07120, 0.05841, 0.01330, 0.03216, 0.06441};

std::vector<Code> null_protein(Rng& rng, std::size_t len) {
    std::vector<Code> out;
    out.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
        out.push_back(static_cast<Code>(
            rng.weighted_index(kAaFreq.data(), kAaFreq.size())));
    }
    return out;
}

}  // namespace

double GumbelParams::evalue(Score score, std::uint64_t m,
                            std::uint64_t n) const {
    return k * static_cast<double>(m) * static_cast<double>(n) *
           std::exp(-lambda * static_cast<double>(score));
}

double GumbelParams::bit_score(Score score) const {
    return (lambda * static_cast<double>(score) - std::log(k)) /
           std::numbers::ln2;
}

double GumbelParams::pvalue(Score score, std::uint64_t m,
                            std::uint64_t n) const {
    return -std::expm1(-evalue(score, m, n));
}

GumbelParams fit_gumbel(const ScoreMatrix& matrix, GapPenalty gap,
                        const GumbelFitOptions& options) {
    SWH_REQUIRE(options.samples >= 10, "need at least 10 null samples");
    SWH_REQUIRE(options.pair_len >= 20, "null sequences too short");
    SWH_REQUIRE(matrix.alphabet() == Alphabet::protein(),
                "empirical fit currently supports the protein alphabet");

    Rng rng(options.seed);
    RunningStats stats;
    for (std::size_t i = 0; i < options.samples; ++i) {
        const auto a = null_protein(rng, options.pair_len);
        const auto b = null_protein(rng, options.pair_len);
        stats.add(static_cast<double>(sw_score_affine(a, b, matrix, gap)));
    }

    // Method of moments for Gumbel(mu, beta):
    //   mean = mu + gamma_E * beta,  var = pi^2/6 * beta^2
    // and the Karlin-Altschul form gives mu = ln(K m n) / lambda,
    // beta = 1 / lambda.
    const double beta = std::sqrt(6.0 * stats.variance()) / std::numbers::pi;
    SWH_REQUIRE(beta > 0.0, "degenerate null score distribution");
    const double lambda = 1.0 / beta;
    const double mu = stats.mean() - kEulerMascheroni * beta;
    const double mn = static_cast<double>(options.pair_len) *
                      static_cast<double>(options.pair_len);
    GumbelParams params;
    params.lambda = lambda;
    params.k = std::exp(lambda * mu) / mn;
    params.fit_m = options.pair_len;
    params.fit_n = options.pair_len;
    return params;
}

}  // namespace swh::align

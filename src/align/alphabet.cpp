#include "align/alphabet.hpp"

#include <cctype>

#include "util/error.hpp"

namespace swh::align {

Alphabet::Alphabet(std::string name, std::string symbols, char wildcard_char,
                   std::string_view aliases)
    : name_(std::move(name)), symbols_(std::move(symbols)) {
    SWH_REQUIRE(!symbols_.empty() && symbols_.size() <= 32,
                "alphabet must have 1..32 symbols");
    const std::size_t wpos = symbols_.find(wildcard_char);
    SWH_REQUIRE(wpos != std::string::npos,
                "wildcard must be one of the alphabet symbols");
    wildcard_ = static_cast<Code>(wpos);

    enc_.fill(wildcard_);
    known_.fill(false);
    for (std::size_t i = 0; i < symbols_.size(); ++i) {
        const char c = symbols_[i];
        const auto up = static_cast<unsigned char>(std::toupper(c));
        const auto lo = static_cast<unsigned char>(std::tolower(c));
        enc_[up] = static_cast<Code>(i);
        enc_[lo] = static_cast<Code>(i);
        known_[up] = known_[lo] = true;
    }
    // Aliases come in "from->to" pairs flattened into a string: "UT" means
    // 'U' encodes like 'T'.
    SWH_REQUIRE(aliases.size() % 2 == 0, "aliases must be char pairs");
    for (std::size_t i = 0; i + 1 < aliases.size(); i += 2) {
        const auto from = static_cast<unsigned char>(aliases[i]);
        const auto from_lo =
            static_cast<unsigned char>(std::tolower(aliases[i]));
        const auto to = static_cast<unsigned char>(aliases[i + 1]);
        enc_[from] = enc_[to];
        enc_[from_lo] = enc_[to];
        known_[from] = known_[from_lo] = true;
    }
}

const Alphabet& Alphabet::protein() {
    static const Alphabet a("protein", "ARNDCQEGHILKMFPSTWYVBZX*", 'X',
                            // J (Leu/Ile), U (selenocysteine), O
                            // (pyrrolysine) are folded onto near symbols,
                            // as BLAST does.
                            "JLUCOK");
    return a;
}

const Alphabet& Alphabet::dna() {
    static const Alphabet a("dna", "ACGTN", 'N', "UT");
    return a;
}

const Alphabet& Alphabet::rna() {
    static const Alphabet a("rna", "ACGUN", 'N', "TU");
    return a;
}

char Alphabet::decode(Code code) const {
    SWH_REQUIRE(code < symbols_.size(), "code out of alphabet range");
    return symbols_[code];
}

std::vector<Code> Alphabet::encode(std::string_view s) const {
    std::vector<Code> out;
    out.reserve(s.size());
    for (char c : s) out.push_back(encode(c));
    return out;
}

std::string Alphabet::decode(const std::vector<Code>& codes) const {
    std::string out;
    out.reserve(codes.size());
    for (Code c : codes) out.push_back(decode(c));
    return out;
}

bool Alphabet::contains(char c) const {
    return known_[static_cast<unsigned char>(c)];
}

}  // namespace swh::align

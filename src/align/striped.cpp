#include "align/striped.hpp"

#include <algorithm>

#include "align/striped_kernels.hpp"
#include "align/sw_scalar.hpp"
#include "simd/simd.hpp"
#include "util/error.hpp"

namespace swh::align {

namespace {

template <typename Cell>
StripedProfile<Cell> build_profile(std::span<const Code> query,
                                   const ScoreMatrix& matrix, int lanes,
                                   Score bias) {
    SWH_REQUIRE(lanes > 0, "lane count must be positive");
    StripedProfile<Cell> p;
    p.query_len = query.size();
    p.lanes = lanes;
    p.bias = bias;
    p.symbols = matrix.alphabet().size();
    p.seg_len = query.empty()
                    ? 1
                    : (query.size() + static_cast<std::size_t>(lanes) - 1) /
                          static_cast<std::size_t>(lanes);
    p.data.assign(p.symbols * p.seg_len * static_cast<std::size_t>(lanes),
                  Cell{0});
    for (Code a = 0; a < p.symbols; ++a) {
        Cell* row = p.data.data() +
                    static_cast<std::size_t>(a) * p.seg_len *
                        static_cast<std::size_t>(lanes);
        for (std::size_t i = 0; i < p.seg_len; ++i) {
            for (int l = 0; l < lanes; ++l) {
                const std::size_t pos =
                    static_cast<std::size_t>(l) * p.seg_len + i;
                // Padding slots keep 0: with the bias it decays in the
                // 8-bit kernel; in the 16-bit kernel padded lanes only
                // carry stale (already-counted) values upward.
                if (pos < query.size()) {
                    const Score v = matrix.at(query[pos], a) + bias;
                    p.max_entry = std::max(p.max_entry, v);
                    row[i * static_cast<std::size_t>(lanes) +
                        static_cast<std::size_t>(l)] = static_cast<Cell>(v);
                }
            }
        }
    }
    return p;
}

}  // namespace

Profile8 build_profile8(std::span<const Code> query, const ScoreMatrix& matrix,
                        int lanes) {
    const Score bias = matrix.bias();
    SWH_REQUIRE(matrix.max_score() + bias <= 255,
                "matrix range too wide for the 8-bit profile");
    return build_profile<std::uint8_t>(query, matrix, lanes, bias);
}

Profile16 build_profile16(std::span<const Code> query,
                          const ScoreMatrix& matrix, int lanes) {
    return build_profile<std::int16_t>(query, matrix, lanes, 0);
}

int lanes_u8(simd::IsaLevel isa) {
    switch (isa) {
        case simd::IsaLevel::Scalar:
            return simd::U8x16s::kLanes;
#if defined(__SSE2__)
        case simd::IsaLevel::SSE2:
            return simd::U8x16::kLanes;
#endif
#if defined(__AVX2__)
        case simd::IsaLevel::AVX2:
            return simd::U8x32::kLanes;
#endif
#if defined(__AVX512BW__)
        case simd::IsaLevel::AVX512:
            return simd::U8x64::kLanes;
#endif
        default:
            break;
    }
    SWH_REQUIRE(false, "ISA level not compiled in");
    return 0;
}

int lanes_i16(simd::IsaLevel isa) {
    switch (isa) {
        case simd::IsaLevel::Scalar:
            return simd::I16x8s::kLanes;
#if defined(__SSE2__)
        case simd::IsaLevel::SSE2:
            return simd::I16x8::kLanes;
#endif
#if defined(__AVX2__)
        case simd::IsaLevel::AVX2:
            return simd::I16x16::kLanes;
#endif
#if defined(__AVX512BW__)
        case simd::IsaLevel::AVX512:
            return simd::I16x32::kLanes;
#endif
        default:
            break;
    }
    SWH_REQUIRE(false, "ISA level not compiled in");
    return 0;
}

StripedResult sw_striped_u8(const Profile8& profile, std::span<const Code> db,
                            GapPenalty gap, simd::IsaLevel isa) {
    switch (isa) {
        case simd::IsaLevel::Scalar:
            return detail::striped_u8<simd::U8x16s>(profile, db, gap);
#if defined(__SSE2__)
        case simd::IsaLevel::SSE2:
            return detail::striped_u8<simd::U8x16>(profile, db, gap);
#endif
#if defined(__AVX2__)
        case simd::IsaLevel::AVX2:
            return detail::striped_u8<simd::U8x32>(profile, db, gap);
#endif
#if defined(__AVX512BW__)
        case simd::IsaLevel::AVX512:
            return detail::striped_u8<simd::U8x64>(profile, db, gap);
#endif
        default:
            break;
    }
    SWH_REQUIRE(false, "ISA level not compiled in");
    return {};
}

StripedResult sw_striped_i16(const Profile16& profile,
                             std::span<const Code> db, GapPenalty gap,
                             simd::IsaLevel isa) {
    const Score matrix_max = profile.max_entry;
    switch (isa) {
        case simd::IsaLevel::Scalar:
            return detail::striped_i16<simd::I16x8s>(profile, db, gap,
                                                     matrix_max);
#if defined(__SSE2__)
        case simd::IsaLevel::SSE2:
            return detail::striped_i16<simd::I16x8>(profile, db, gap,
                                                    matrix_max);
#endif
#if defined(__AVX2__)
        case simd::IsaLevel::AVX2:
            return detail::striped_i16<simd::I16x16>(profile, db, gap,
                                                     matrix_max);
#endif
#if defined(__AVX512BW__)
        case simd::IsaLevel::AVX512:
            return detail::striped_i16<simd::I16x32>(profile, db, gap,
                                                     matrix_max);
#endif
        default:
            break;
    }
    SWH_REQUIRE(false, "ISA level not compiled in");
    return {};
}

StripedAligner::StripedAligner(std::vector<Code> query,
                               const ScoreMatrix& matrix, GapPenalty gap,
                               simd::IsaLevel isa)
    : query_(std::move(query)), matrix_(&matrix), gap_(gap), isa_(isa) {
    SWH_REQUIRE(simd::is_supported(isa), "requested ISA not supported");
    profile8_ = build_profile8(query_, matrix, lanes_u8(isa));
    profile16_ = build_profile16(query_, matrix, lanes_i16(isa));
}

Score StripedAligner::score(std::span<const Code> db) const {
    const StripedResult r8 = sw_striped_u8(profile8_, db, gap_, isa_);
    if (!r8.overflow) {
        runs8_.fetch_add(1, std::memory_order_relaxed);
        return r8.score;
    }
    const StripedResult r16 = sw_striped_i16(profile16_, db, gap_, isa_);
    if (!r16.overflow) {
        runs16_.fetch_add(1, std::memory_order_relaxed);
        return r16.score;
    }
    runs32_.fetch_add(1, std::memory_order_relaxed);
    return sw_score_affine(query_, db, *matrix_, gap_);
}

StripedAligner::Stats StripedAligner::stats() const {
    return Stats{runs8_.load(std::memory_order_relaxed),
                 runs16_.load(std::memory_order_relaxed),
                 runs32_.load(std::memory_order_relaxed)};
}

}  // namespace swh::align

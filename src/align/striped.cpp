#include "align/striped.hpp"

#include <algorithm>
#include <new>

#include "align/interseq.hpp"
#include "align/striped_kernels.hpp"
#include "align/sw_scalar.hpp"
#include "simd/simd.hpp"
#include "util/error.hpp"

namespace swh::align {

namespace {

constexpr std::size_t kScratchAlign = 64;

constexpr std::size_t round_up(std::size_t n) {
    return (n + kScratchAlign - 1) & ~(kScratchAlign - 1);
}

template <typename Cell>
StripedProfile<Cell> build_profile(std::span<const Code> query,
                                   const ScoreMatrix& matrix, int lanes,
                                   Score bias) {
    SWH_REQUIRE(lanes > 0, "lane count must be positive");
    StripedProfile<Cell> p;
    p.query_len = query.size();
    p.lanes = lanes;
    p.bias = bias;
    p.symbols = matrix.alphabet().size();
    p.seg_len = query.empty()
                    ? 1
                    : (query.size() + static_cast<std::size_t>(lanes) - 1) /
                          static_cast<std::size_t>(lanes);
    // Over-allocate by one cache line and slide the base up so every
    // profile row load in the kernels is naturally aligned (row strides
    // are whole vectors, and the scan reloads rows seg times per column).
    const std::size_t cells =
        p.symbols * p.seg_len * static_cast<std::size_t>(lanes);
    p.data.assign(cells + kScratchAlign / sizeof(Cell), Cell{0});
    const auto addr = reinterpret_cast<std::uintptr_t>(p.data.data());
    p.align_pad =
        ((kScratchAlign - addr % kScratchAlign) % kScratchAlign) / sizeof(Cell);
    for (Code a = 0; a < p.symbols; ++a) {
        Cell* row = p.data.data() + p.align_pad +
                    static_cast<std::size_t>(a) * p.seg_len *
                        static_cast<std::size_t>(lanes);
        for (std::size_t i = 0; i < p.seg_len; ++i) {
            for (int l = 0; l < lanes; ++l) {
                const std::size_t pos =
                    static_cast<std::size_t>(l) * p.seg_len + i;
                // Padding slots keep 0: with the bias it decays in the
                // 8-bit kernel; in the 16-bit kernel padded lanes only
                // carry stale (already-counted) values upward.
                if (pos < query.size()) {
                    const Score v = matrix.at(query[pos], a) + bias;
                    p.max_entry = std::max(p.max_entry, v);
                    row[i * static_cast<std::size_t>(lanes) +
                        static_cast<std::size_t>(l)] = static_cast<Cell>(v);
                }
            }
        }
    }
    return p;
}

template <class V>
StripedResult run_u8(const Profile8& p, std::span<const Code> db,
                     GapPenalty gap, ScanScratch& scratch, bool trusted) {
    return trusted ? detail::striped_u8_auto<V, false>(p, db, gap, scratch)
                   : detail::striped_u8_auto<V, true>(p, db, gap, scratch);
}

template <class V>
StripedResult run_i16(const Profile16& p, std::span<const Code> db,
                      GapPenalty gap, Score matrix_max, ScanScratch& scratch,
                      bool trusted) {
    return trusted ? detail::striped_i16_auto<V, false>(p, db, gap, matrix_max,
                                                        scratch)
                   : detail::striped_i16_auto<V, true>(p, db, gap, matrix_max,
                                                       scratch);
}

}  // namespace

void ScanScratch::Free::operator()(std::byte* p) const {
    ::operator delete[](p, std::align_val_t{kScratchAlign});
}

void ScanScratch::ensure(std::size_t bytes) {
    if (bytes <= cap_) return;
    // Grow geometrically so a length-mixed scan settles after few resizes.
    const std::size_t cap = std::max(bytes, cap_ * 2);
    buf_.reset(static_cast<std::byte*>(
        ::operator new[](cap, std::align_val_t{kScratchAlign})));
    cap_ = cap;
}

ScanScratch::KernelBuffers ScanScratch::kernel_buffers(
    std::size_t bytes_per_buffer) {
    const std::size_t stride = round_up(bytes_per_buffer);
    ensure(3 * stride);
    std::byte* base = buf_.get();
    return {base, base + stride, base + 2 * stride};
}

ScanScratch::ScoreRows ScanScratch::score_rows(std::size_t cells_per_row) {
    const std::size_t stride = round_up(cells_per_row * sizeof(Score));
    ensure(2 * stride);
    std::byte* base = buf_.get();
    return {reinterpret_cast<Score*>(base),
            reinterpret_cast<Score*>(base + stride)};
}

Profile8 build_profile8(std::span<const Code> query, const ScoreMatrix& matrix,
                        int lanes) {
    const Score bias = matrix.bias();
    SWH_REQUIRE(matrix.max_score() + bias <= 255,
                "matrix range too wide for the 8-bit profile");
    return build_profile<std::uint8_t>(query, matrix, lanes, bias);
}

Profile16 build_profile16(std::span<const Code> query,
                          const ScoreMatrix& matrix, int lanes) {
    return build_profile<std::int16_t>(query, matrix, lanes, 0);
}

int lanes_u8(simd::IsaLevel isa) {
    switch (isa) {
        case simd::IsaLevel::Scalar:
            return simd::U8x16s::kLanes;
#if defined(__SSE2__)
        case simd::IsaLevel::SSE2:
            return simd::U8x16::kLanes;
#endif
#if defined(__AVX2__)
        case simd::IsaLevel::AVX2:
            return simd::U8x32::kLanes;
#endif
#if defined(__AVX512BW__)
        case simd::IsaLevel::AVX512:
            return simd::U8x64::kLanes;
#endif
        default:
            break;
    }
    SWH_REQUIRE(false, "ISA level not compiled in");
    return 0;
}

int lanes_i16(simd::IsaLevel isa) {
    switch (isa) {
        case simd::IsaLevel::Scalar:
            return simd::I16x8s::kLanes;
#if defined(__SSE2__)
        case simd::IsaLevel::SSE2:
            return simd::I16x8::kLanes;
#endif
#if defined(__AVX2__)
        case simd::IsaLevel::AVX2:
            return simd::I16x16::kLanes;
#endif
#if defined(__AVX512BW__)
        case simd::IsaLevel::AVX512:
            return simd::I16x32::kLanes;
#endif
        default:
            break;
    }
    SWH_REQUIRE(false, "ISA level not compiled in");
    return 0;
}

StripedResult sw_striped_u8(const Profile8& profile, std::span<const Code> db,
                            GapPenalty gap, simd::IsaLevel isa,
                            ScanScratch& scratch, bool trusted) {
    switch (isa) {
        case simd::IsaLevel::Scalar:
            return run_u8<simd::U8x16s>(profile, db, gap, scratch, trusted);
#if defined(__SSE2__)
        case simd::IsaLevel::SSE2:
            return run_u8<simd::U8x16>(profile, db, gap, scratch, trusted);
#endif
#if defined(__AVX2__)
        case simd::IsaLevel::AVX2:
            return run_u8<simd::U8x32>(profile, db, gap, scratch, trusted);
#endif
#if defined(__AVX512BW__)
        case simd::IsaLevel::AVX512:
            return run_u8<simd::U8x64>(profile, db, gap, scratch, trusted);
#endif
        default:
            break;
    }
    SWH_REQUIRE(false, "ISA level not compiled in");
    return {};
}

StripedResult sw_striped_u8(const Profile8& profile, std::span<const Code> db,
                            GapPenalty gap, simd::IsaLevel isa) {
    ScanScratch scratch;
    return sw_striped_u8(profile, db, gap, isa, scratch, /*trusted=*/false);
}

StripedResult sw_striped_i16(const Profile16& profile,
                             std::span<const Code> db, GapPenalty gap,
                             simd::IsaLevel isa, ScanScratch& scratch,
                             bool trusted) {
    const Score matrix_max = profile.max_entry;
    switch (isa) {
        case simd::IsaLevel::Scalar:
            return run_i16<simd::I16x8s>(profile, db, gap, matrix_max, scratch,
                                         trusted);
#if defined(__SSE2__)
        case simd::IsaLevel::SSE2:
            return run_i16<simd::I16x8>(profile, db, gap, matrix_max, scratch,
                                        trusted);
#endif
#if defined(__AVX2__)
        case simd::IsaLevel::AVX2:
            return run_i16<simd::I16x16>(profile, db, gap, matrix_max, scratch,
                                         trusted);
#endif
#if defined(__AVX512BW__)
        case simd::IsaLevel::AVX512:
            return run_i16<simd::I16x32>(profile, db, gap, matrix_max, scratch,
                                         trusted);
#endif
        default:
            break;
    }
    SWH_REQUIRE(false, "ISA level not compiled in");
    return {};
}

StripedResult sw_striped_i16(const Profile16& profile,
                             std::span<const Code> db, GapPenalty gap,
                             simd::IsaLevel isa) {
    ScanScratch scratch;
    return sw_striped_i16(profile, db, gap, isa, scratch, /*trusted=*/false);
}

StripedAligner::StripedAligner(std::vector<Code> query,
                               const ScoreMatrix& matrix, GapPenalty gap,
                               simd::IsaLevel isa)
    : query_(std::move(query)), matrix_(&matrix), gap_(gap), isa_(isa) {
    SWH_REQUIRE(simd::is_supported(isa), "requested ISA not supported");
    profile8_ = build_profile8(query_, matrix, lanes_u8(isa));
    profile16_ = build_profile16(query_, matrix, lanes_i16(isa));
    if (interseq_supported(matrix)) {
        interseq_ = std::make_unique<InterseqProfile>(
            build_interseq_profile(query_, matrix));
    }
}

StripedAligner::~StripedAligner() = default;

StripedResult StripedAligner::score_u8(std::span<const Code> db,
                                       ScanScratch& scratch,
                                       bool trusted) const {
    return sw_striped_u8(profile8_, db, gap_, isa_, scratch, trusted);
}

Score StripedAligner::rescore_wide(std::span<const Code> db,
                                   ScanScratch& scratch, bool trusted) const {
    const StripedResult r16 =
        sw_striped_i16(profile16_, db, gap_, isa_, scratch, trusted);
    if (!r16.overflow) {
        runs16_.fetch_add(1, std::memory_order_relaxed);
        return r16.score;
    }
    runs32_.fetch_add(1, std::memory_order_relaxed);
    const ScanScratch::ScoreRows rows = scratch.score_rows(db.size() + 1);
    return sw_score_affine_rows(query_, db, *matrix_, gap_, rows.h, rows.f);
}

Score StripedAligner::rescore_i32(std::span<const Code> db,
                                  ScanScratch& scratch) const {
    runs32_.fetch_add(1, std::memory_order_relaxed);
    const ScanScratch::ScoreRows rows = scratch.score_rows(db.size() + 1);
    return sw_score_affine_rows(query_, db, *matrix_, gap_, rows.h, rows.f);
}

Score StripedAligner::score(std::span<const Code> db,
                            ScanScratch& scratch) const {
    const StripedResult r8 = score_u8(db, scratch);
    if (!r8.overflow) {
        runs8_.fetch_add(1, std::memory_order_relaxed);
        return r8.score;
    }
    return rescore_wide(db, scratch);
}

Score StripedAligner::score(std::span<const Code> db) const {
    thread_local ScanScratch scratch;
    return score(db, scratch);
}

StripedAligner::Stats StripedAligner::stats() const {
    return Stats{runs8_.load(std::memory_order_relaxed),
                 runs16_.load(std::memory_order_relaxed),
                 runs32_.load(std::memory_order_relaxed)};
}

}  // namespace swh::align

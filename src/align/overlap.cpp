#include "align/overlap.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "util/error.hpp"

namespace swh::align {

namespace {

constexpr Score kNegInf = std::numeric_limits<Score>::min() / 4;

// Shared DP for both entry points. Boundary conditions:
//   H(i, 0) = 0            (skipping a's prefix is free)
//   H(0, j) = -gap_cost(j) (b's prefix is inside the overlap)
// answer  = max over j of H(m, j)  (skipping b's suffix is free),
// including j = 0 (the empty overlap, score 0).
struct OverlapDp {
    std::size_t cols = 0;
    std::vector<Score> h, e, f;
    std::vector<std::uint8_t> dir;  // same bit layout as traceback.cpp
};

constexpr std::uint8_t kHStop = 0;  // boundary: start of overlap in a
constexpr std::uint8_t kHDiag = 1;
constexpr std::uint8_t kHFromE = 2;
constexpr std::uint8_t kHFromF = 3;
constexpr std::uint8_t kEExt = 1u << 2;
constexpr std::uint8_t kFExt = 1u << 3;

OverlapDp fill(std::span<const Code> a, std::span<const Code> b,
               const ScoreMatrix& matrix, GapPenalty gap) {
    SWH_REQUIRE(gap.open >= 0 && gap.extend >= 0,
                "gap penalties must be non-negative");
    const std::size_t m = a.size(), n = b.size();
    OverlapDp dp;
    dp.cols = n + 1;
    dp.h.assign((m + 1) * dp.cols, 0);
    dp.e.assign((m + 1) * dp.cols, kNegInf);
    dp.f.assign((m + 1) * dp.cols, kNegInf);
    dp.dir.assign((m + 1) * dp.cols, kHStop);

    for (std::size_t j = 1; j <= n; ++j) {
        dp.h[j] = -gap.cost(static_cast<Score>(j));
        dp.e[j] = dp.h[j];
        dp.dir[j] = kHFromE | (j > 1 ? kEExt : 0);
    }
    // Column 0 stays 0 with kHStop: overlaps may begin at any a offset.

    for (std::size_t i = 1; i <= m; ++i) {
        for (std::size_t j = 1; j <= n; ++j) {
            const std::size_t idx = i * dp.cols + j;
            std::uint8_t d = 0;

            const Score e_ext = dp.e[idx - 1] - gap.extend;
            const Score e_open = dp.h[idx - 1] - gap.open - gap.extend;
            if (e_ext >= e_open) d |= kEExt;
            dp.e[idx] = std::max(e_ext, e_open);

            const Score f_ext = dp.f[idx - dp.cols] - gap.extend;
            const Score f_open = dp.h[idx - dp.cols] - gap.open - gap.extend;
            if (f_ext >= f_open) d |= kFExt;
            dp.f[idx] = std::max(f_ext, f_open);

            const Score diag = dp.h[idx - dp.cols - 1] +
                               matrix.at(a[i - 1], b[j - 1]);
            Score best = diag;
            std::uint8_t src = kHDiag;
            if (dp.e[idx] > best) {
                best = dp.e[idx];
                src = kHFromE;
            }
            if (dp.f[idx] > best) {
                best = dp.f[idx];
                src = kHFromF;
            }
            dp.h[idx] = best;
            dp.dir[idx] = d | src;
        }
    }
    return dp;
}

Overlap best_end(const OverlapDp& dp, std::size_t m, std::size_t n) {
    Overlap out;  // the empty overlap: score 0, b_end 0
    for (std::size_t j = 1; j <= n; ++j) {
        const Score s = dp.h[m * dp.cols + j];
        if (s > out.score) {
            out.score = s;
            out.b_end = j;
        }
    }
    return out;
}

}  // namespace

Overlap overlap_align(std::span<const Code> a, std::span<const Code> b,
                      const ScoreMatrix& matrix, GapPenalty gap) {
    if (a.empty() || b.empty()) return Overlap{};
    const OverlapDp dp = fill(a, b, matrix, gap);
    Overlap out = best_end(dp, a.size(), b.size());
    if (out.b_end == 0) return out;

    // Walk back to find where the overlap begins in a.
    std::size_t i = a.size(), j = out.b_end;
    enum class St { H, E, F } st = St::H;
    while (j > 0) {
        const std::uint8_t d = dp.dir[i * dp.cols + j];
        if (st == St::H) {
            const std::uint8_t src = d & 0x3;
            SWH_REQUIRE(src != kHStop || j == 0,
                        "overlap traceback left b before j=0");
            if (src == kHDiag) {
                --i;
                --j;
            } else if (src == kHFromE) {
                st = St::E;
            } else {
                st = St::F;
            }
        } else if (st == St::E) {
            --j;
            if ((d & kEExt) == 0) st = St::H;
        } else {
            --i;
            if ((d & kFExt) == 0) st = St::H;
        }
    }
    out.a_begin = i;
    return out;
}

OverlapAlignment overlap_align_ops(std::span<const Code> a,
                                   std::span<const Code> b,
                                   const ScoreMatrix& matrix,
                                   GapPenalty gap) {
    OverlapAlignment out;
    if (a.empty() || b.empty()) return out;
    const OverlapDp dp = fill(a, b, matrix, gap);
    out.overlap = best_end(dp, a.size(), b.size());
    if (out.overlap.b_end == 0) return out;

    std::size_t i = a.size(), j = out.overlap.b_end;
    enum class St { H, E, F } st = St::H;
    while (j > 0) {
        const std::uint8_t d = dp.dir[i * dp.cols + j];
        if (st == St::H) {
            const std::uint8_t src = d & 0x3;
            if (src == kHDiag) {
                out.ops.push_back(AlignOp::Match);
                --i;
                --j;
            } else if (src == kHFromE) {
                st = St::E;
            } else {
                st = St::F;
            }
        } else if (st == St::E) {
            out.ops.push_back(AlignOp::Insert);
            --j;
            if ((d & kEExt) == 0) st = St::H;
        } else {
            out.ops.push_back(AlignOp::Delete);
            --i;
            if ((d & kFExt) == 0) st = St::H;
        }
    }
    out.overlap.a_begin = i;
    std::reverse(out.ops.begin(), out.ops.end());
    return out;
}

}  // namespace swh::align

#pragma once

#include <cstddef>
#include <span>

#include "align/score_matrix.hpp"

namespace swh::align {

/// Banded affine-gap Smith-Waterman score: only DP cells with
/// j - i in [diag_shift - band_width, diag_shift + band_width] are
/// computed (i over s, j over t, both 0-based residue indices). This is
/// the classic seed-and-extend refinement: once a seed fixes the
/// diagonal, a narrow band finds the local optimum in O(band * |s|)
/// time. The result is a lower bound on the unbanded score, with
/// equality whenever the optimal alignment stays inside the band.
Score sw_score_banded(std::span<const Code> s, std::span<const Code> t,
                      const ScoreMatrix& matrix, GapPenalty gap,
                      std::ptrdiff_t diag_shift, std::size_t band_width);

/// Band wide enough to make sw_score_banded exact for these lengths.
std::size_t full_band_width(std::size_t s_len, std::size_t t_len);

}  // namespace swh::align

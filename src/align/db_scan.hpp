#pragma once

// Two-pass batched database scan over a packed subject arena.
//
// Pass 1 runs every subject through an 8-bit kernel and defers the
// (rare) overflowed ones; pass 2 settles the deferred batch with the
// i16 kernel / scalar int32 fallback. Compared with the seed's inline
// 8 -> 16 -> 32 escalation per subject, this keeps the u8 profile and
// scratch hot in cache during the bulk of the scan and touches the wide
// profile only once, at the end of a worker's claim.
//
// When the caller also provides a lane-interleaved cohort layout (see
// db::PackedDatabase::interleaved and align/interseq.hpp), pass 1
// dispatches adaptively per cohort: well-filled cohorts are scored W
// subjects at a time by the inter-sequence u8 kernel (near-constant
// GCUPS regardless of query length), while sparse cohorts — the
// divergent long-subject head and the partial tail — fall back to the
// striped kernel per subject. Overflowed lanes feed the same deferred
// escalation either way, so the emit contract (exactly one settled
// score per subject, original db_index) is unchanged.
//
// The scanner consumes non-owning views so swh_align stays independent
// of swh_db (which produces the views, see db::PackedDatabase).

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "align/interseq.hpp"
#include "align/striped.hpp"
#include "util/check.hpp"

namespace swh::align {

/// Non-owning view of a packed subject set: one contiguous residue
/// arena plus per-subject offsets/lengths and a scan permutation.
/// Residues are validated at pack time; `max_code` carries the proof,
/// which DatabaseScanner checks once against the query profile so the
/// kernels can skip the per-residue alphabet check.
struct PackedSubjects {
    const Code* arena = nullptr;
    const std::uint64_t* offsets = nullptr;  ///< start of subject i
    const std::uint32_t* lengths = nullptr;
    /// Scan permutation (length-sorted, longest first). Null = identity.
    const std::uint32_t* order = nullptr;
    std::size_t count = 0;
    std::size_t max_length = 0;
    Code max_code = 0;  ///< largest residue code present in the arena

    std::span<const Code> subject(std::size_t i) const {
        return {arena + offsets[i], lengths[i]};
    }
};

/// Thread-safe scan orchestrator: workers claim work from a shared
/// cursor (chunks of subjects, or whole cohorts when a lane-interleaved
/// layout is attached) and run the two-pass scan. One instance per
/// (aligner, database) scan; call run_worker from each worker thread
/// with a thread-private ScanScratch.
class DatabaseScanner {
public:
    static constexpr std::size_t kDefaultChunk = 64;

    /// Queries longer than this stay on the striped kernel everywhere:
    /// the inter-sequence DP state (two query-length rows of W-lane
    /// vectors) would fall out of L1/L2, and the striped kernel is
    /// already near peak at these lengths.
    static constexpr std::size_t kInterseqMaxQuery = 1024;

    /// Minimum real-residue fill of a cohort (percent of columns *
    /// lanes) for inter-sequence dispatch. Below it — the divergent
    /// long-subject head or the partial tail cohort — padded-lane cells
    /// would eat the lane-parallel win, so the striped kernel takes
    /// those subjects one at a time.
    static constexpr std::uint64_t kInterseqMinFillPct = 75;

    /// Validates once that every packed residue fits the aligner's
    /// profile alphabet (throws ContractError otherwise) — the per-
    /// subject kernel calls then run with the check compiled out. If
    /// `cohorts` is non-empty, the aligner must have an inter-sequence
    /// profile and the cohort width must match its u8 lane count; the
    /// per-cohort kernel choice is precomputed here.
    DatabaseScanner(const StripedAligner& aligner, PackedSubjects subjects,
                    std::size_t chunk = kDefaultChunk,
                    InterleavedCohorts cohorts = {});

    /// Claims work until the database is exhausted or `emit` asks to
    /// stop. `emit(db_index, length, score) -> bool` is called exactly
    /// once per settled subject — in scan order for pass-1 subjects,
    /// then for this worker's deferred overflow batch; `db_index` is
    /// always the ORIGINAL database index regardless of scan order.
    /// Once an emit call returns false the worker settles no further
    /// subjects (the deferred batch included). Returns false iff an
    /// emit call returned false (scan cancelled).
    template <class EmitFn>
    bool run_worker(ScanScratch& scratch, EmitFn&& emit) {
        WorkerTallies t;
        std::vector<std::uint32_t> overflow;
        bool keep = cohort_mode_ ? claim_cohorts(scratch, emit, overflow, t)
                                 : claim_subjects(scratch, emit, overflow, t);
        // Pass 2: settle the deferred overflow batch with wide kernels.
        std::size_t deferred_settled = 0;
        for (const std::uint32_t idx : overflow) {
            if (!keep) break;
            const Score s = aligner_->rescore_wide(subjects_.subject(idx),
                                                   scratch, /*trusted=*/true);
            keep = emit(idx, subjects_.lengths[idx], s);
            ++deferred_settled;
        }
        // Emit contract: unless an emit cancelled the scan, every subject
        // this worker claimed settles exactly once — in pass 1 for the
        // in-range scores (settled8), in pass 2 for the deferred rest.
        SWH_DCHECK(!keep || deferred_settled == overflow.size(),
                   "deferred overflow batch must settle completely");
        SWH_DCHECK(!keep || t.settled8 + deferred_settled ==
                                t.subjects_interseq + t.subjects_striped,
                   "emit contract: one settled score per claimed subject");
        aligner_->credit_runs8(t.settled8);
        credit_dispatch(t);
        return keep;
    }

    /// Rewinds the shared cursor for another scan of the same subjects.
    void reset() { next_.store(0, std::memory_order_relaxed); }

    std::size_t chunk() const { return chunk_; }
    std::size_t count() const { return subjects_.count; }
    const StripedAligner& aligner() const { return *aligner_; }
    bool cohort_mode() const { return cohort_mode_; }

    /// Pass-1 kernel selection counters (cumulative across workers and
    /// resets). Subjects deferred to pass 2 are counted under the
    /// kernel that deferred them.
    struct DispatchStats {
        std::uint64_t cohorts_interseq = 0;
        std::uint64_t cohorts_striped = 0;
        std::uint64_t subjects_interseq = 0;
        std::uint64_t subjects_striped = 0;
    };
    DispatchStats dispatch_stats() const;

private:
    struct WorkerTallies {
        std::uint64_t settled8 = 0;
        std::uint64_t cohorts_interseq = 0;
        std::uint64_t cohorts_striped = 0;
        std::uint64_t subjects_interseq = 0;
        std::uint64_t subjects_striped = 0;
    };

    std::uint32_t slot_index(std::size_t slot) const {
        return subjects_.order != nullptr ? subjects_.order[slot]
                                          : static_cast<std::uint32_t>(slot);
    }

    /// Legacy claim unit: chunks of scan-order subjects, striped u8.
    template <class EmitFn>
    bool claim_subjects(ScanScratch& scratch, EmitFn&& emit,
                        std::vector<std::uint32_t>& overflow,
                        WorkerTallies& t) {
        bool keep = true;
        const std::size_t n = subjects_.count;
        while (keep) {
            const std::size_t begin =
                next_.fetch_add(chunk_, std::memory_order_relaxed);
            if (begin >= n) break;
            const std::size_t end = std::min(begin + chunk_, n);
            for (std::size_t slot = begin; slot < end && keep; ++slot) {
                keep = score_striped(slot_index(slot), scratch, emit, overflow,
                                     t);
            }
        }
        return keep;
    }

    /// Cohort claim unit: whole width-W cohorts, kernel per choice_.
    template <class EmitFn>
    bool claim_cohorts(ScanScratch& scratch, EmitFn&& emit,
                       std::vector<std::uint32_t>& overflow,
                       WorkerTallies& t) {
        bool keep = true;
        const std::size_t n = cohorts_.count;
        const std::size_t claim = std::max<std::size_t>(
            1, chunk_ / static_cast<std::size_t>(cohorts_.lanes));
        std::uint8_t lane_best[64];
        while (keep) {
            const std::size_t begin =
                next_.fetch_add(claim, std::memory_order_relaxed);
            if (begin >= n) break;
            const std::size_t end = std::min(begin + claim, n);
            for (std::size_t c = begin; c < end && keep; ++c) {
                const CohortDesc& d = cohorts_.cohorts[c];
                if (choice_[c]) {
                    ++t.cohorts_interseq;
                    const std::uint64_t ovf = sw_interseq_u8(
                        *aligner_->interseq(), cohorts_.arena + d.offset,
                        d.columns, aligner_->gap(), aligner_->isa(), scratch,
                        lane_best);
                    for (std::uint32_t l = 0; l < d.lanes_used && keep; ++l) {
                        const std::uint32_t idx =
                            slot_index(d.first_slot + l);
                        if ((ovf >> l) & 1) {
                            overflow.push_back(idx);
                            ++t.subjects_interseq;
                            continue;
                        }
                        ++t.settled8;
                        ++t.subjects_interseq;
                        keep = emit(idx, subjects_.lengths[idx],
                                    static_cast<Score>(lane_best[l]));
                    }
                } else {
                    ++t.cohorts_striped;
                    for (std::uint32_t l = 0; l < d.lanes_used && keep; ++l) {
                        keep = score_striped(slot_index(d.first_slot + l),
                                             scratch, emit, overflow, t);
                    }
                }
            }
        }
        return keep;
    }

    template <class EmitFn>
    bool score_striped(std::uint32_t idx, ScanScratch& scratch, EmitFn&& emit,
                       std::vector<std::uint32_t>& overflow,
                       WorkerTallies& t) {
        ++t.subjects_striped;
        const StripedResult r =
            aligner_->score_u8(subjects_.subject(idx), scratch,
                               /*trusted=*/true);
        if (r.overflow) {
            overflow.push_back(idx);
            return true;
        }
        ++t.settled8;
        return emit(idx, subjects_.lengths[idx], r.score);
    }

    void credit_dispatch(const WorkerTallies& t);

    const StripedAligner* aligner_;
    PackedSubjects subjects_;
    std::size_t chunk_;
    InterleavedCohorts cohorts_;
    bool cohort_mode_ = false;
    /// Per-cohort kernel choice (1 = inter-sequence, 0 = striped),
    /// precomputed at construction from query length and cohort fill.
    std::vector<std::uint8_t> choice_;
    std::atomic<std::size_t> next_{0};
    std::atomic<std::uint64_t> cohorts_interseq_{0}, cohorts_striped_{0};
    std::atomic<std::uint64_t> subjects_interseq_{0}, subjects_striped_{0};
};

}  // namespace swh::align

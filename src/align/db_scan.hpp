#pragma once

// Three-stage funnel scan over a packed subject arena.
//
// Stage 1 (optional, cohort mode only): an allocation-free ungapped
// inter-sequence prefilter (align/ungapped.hpp) sweeps each cohort and
// turns the per-lane ungapped maxima into provable upper bounds on the
// gapped scores via the per-query gap-slack bound. Lanes whose bound
// falls strictly below the caller-published pruning threshold — fed
// back from the running k-th best exact score — are skipped entirely;
// anything unprovable (u8 saturation the 16-bit re-bound cannot clear)
// is rescored, so the surviving top-k is bit-identical to an exhaustive
// scan. See DESIGN.md "Prefilter funnel" for the soundness argument.
//
// Stage 2 runs every survivor through an 8-bit exact kernel and defers
// the (rare) overflowed ones; stage 3 settles the deferred batch with
// the i16 kernel / scalar int32 fallback. Compared with the seed's
// inline 8 -> 16 -> 32 escalation per subject, this keeps the u8
// profile and scratch hot in cache during the bulk of the scan and
// touches the wide profile only once, at the end of a worker's claim.
//
// When the caller also provides a lane-interleaved cohort layout (see
// db::PackedDatabase::interleaved and align/interseq.hpp), stage 2
// dispatches adaptively per cohort: well-filled cohorts are scored W
// subjects at a time by the inter-sequence u8 kernel (near-constant
// GCUPS regardless of query length), while sparse cohorts — the
// divergent long-subject head and the partial tail — fall back to the
// striped kernel per subject. Overflowed lanes feed the same deferred
// escalation either way, so the emit contract (exactly one settled
// score per non-pruned subject, original db_index) is unchanged.
//
// The scanner consumes non-owning views so swh_align stays independent
// of swh_db (which produces the views, see db::PackedDatabase).

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "align/interseq.hpp"
#include "align/striped.hpp"
#include "align/ungapped.hpp"
#include "util/check.hpp"

namespace swh::align {

/// Non-owning view of a packed subject set: one contiguous residue
/// arena plus per-subject offsets/lengths and a scan permutation.
/// Residues are validated at pack time; `max_code` carries the proof,
/// which DatabaseScanner checks once against the query profile so the
/// kernels can skip the per-residue alphabet check.
struct PackedSubjects {
    const Code* arena = nullptr;
    const std::uint64_t* offsets = nullptr;  ///< start of subject i
    const std::uint32_t* lengths = nullptr;
    /// Scan permutation (length-sorted, longest first). Null = identity.
    const std::uint32_t* order = nullptr;
    std::size_t count = 0;
    std::size_t max_length = 0;
    Code max_code = 0;  ///< largest residue code present in the arena

    std::span<const Code> subject(std::size_t i) const {
        return {arena + offsets[i], lengths[i]};
    }
};

/// Thread-safe scan orchestrator: workers claim work from a shared
/// cursor (chunks of subjects, or whole cohorts when a lane-interleaved
/// layout is attached) and run the two-pass scan. One instance per
/// (aligner, database) scan; call run_worker from each worker thread
/// with a thread-private ScanScratch.
class DatabaseScanner {
public:
    static constexpr std::size_t kDefaultChunk = 64;

    /// Queries longer than this stay on the striped kernel everywhere:
    /// the inter-sequence DP state (two query-length rows of W-lane
    /// vectors) would fall out of L1/L2, and the striped kernel is
    /// already near peak at these lengths.
    static constexpr std::size_t kInterseqMaxQuery = 1024;

    /// Minimum real-residue fill of a cohort (percent of columns *
    /// lanes) for inter-sequence dispatch. Below it — the divergent
    /// long-subject head or the partial tail cohort — padded-lane cells
    /// would eat the lane-parallel win, so the striped kernel takes
    /// those subjects one at a time.
    static constexpr std::uint64_t kInterseqMinFillPct = 75;

    /// Partial-survivor cutover: an interseq-choice cohort whose
    /// surviving lane count falls to 1/kFunnelStripedCutover of its used
    /// lanes (or below) is exact-scored per survivor by the striped
    /// kernel instead — the inter-sequence kernel's cost is fixed per
    /// cohort, so mostly-pruned cohorts would waste it on dead lanes.
    static constexpr std::uint32_t kFunnelStripedCutover = 4;

    /// Minimum u8-saturated lane count before the 16-bit re-bound sweep
    /// pays for itself: the sweep costs about two u8 sweeps for the
    /// whole cohort, so when only a few lanes saturated it is cheaper
    /// to pass them straight to the exact stage (which escalates them
    /// anyway if they are genuinely large).
    static constexpr int kRebound16MinLanes = 8;

    /// Query rows per prefilter tile. Long queries are bounded tile by
    /// tile and the per-lane tile bounds summed (sound — see
    /// align/ungapped.hpp): each tile's two DP rows stay L1-resident
    /// where a monolithic sweep of a 500+ residue query spills, and a
    /// tile's maximum rarely saturates the 8-bit kernel, so the wide
    /// re-bound sweep stays rare even for long subjects.
    static constexpr std::size_t kFilterChunkRows = 256;

    /// Cohorts scanned first when the prefilter is armed: the ones
    /// whose subject lengths sit closest to the query's, where true
    /// homologs — the scores that drive the pruning threshold up — are
    /// most likely to live. Priming turns the dynamic threshold from a
    /// slow ramp into a near-final value for the bulk of the scan; any
    /// scan order yields the same top-k (see run_worker).
    static constexpr std::size_t kPrimeCohorts = 4;

    /// Validates once that every packed residue fits the aligner's
    /// profile alphabet (throws ContractError otherwise) — the per-
    /// subject kernel calls then run with the check compiled out. If
    /// `cohorts` is non-empty, the aligner must have an inter-sequence
    /// profile and the cohort width must match its u8 lane count; the
    /// per-cohort kernel choice is precomputed here.
    ///
    /// `threshold`, when non-null, arms the stage-1 prefilter (cohort
    /// mode only; inert otherwise): each cohort loads the current value
    /// — the caller keeps it at the running k-th best exact score, or
    /// any value <= 0 / engines::TopK::kNoThreshold while fewer than k
    /// hits exist — and prunes lanes whose gap-slack score bound falls
    /// strictly below it. The atomic must only ever increase and must
    /// outlive the scanner; monotonicity is what makes a stale read
    /// safe (a lower threshold only prunes less).
    DatabaseScanner(const StripedAligner& aligner, PackedSubjects subjects,
                    std::size_t chunk = kDefaultChunk,
                    InterleavedCohorts cohorts = {},
                    const std::atomic<Score>* threshold = nullptr);

    /// Claims work until the database is exhausted or `emit` asks to
    /// stop. `emit(db_index, length, score) -> bool` is called exactly
    /// once per settled subject — in scan order for stage-2 subjects,
    /// then for this worker's deferred overflow batch (drained after
    /// every claim when the prefilter is armed: the deferred lanes are
    /// the likely top scorers, and settling them early is what feeds
    /// the pruning threshold while the scan is still young); `db_index`
    /// is always the ORIGINAL database index regardless of scan order.
    /// `pruned(db_index, length) -> bool` is called exactly once per
    /// subject the prefilter proved out of the top-k (never called when
    /// the prefilter is unarmed). Once either callback returns false
    /// the worker settles no further subjects (the deferred batch
    /// included). Returns false iff a callback returned false (scan
    /// cancelled).
    template <class EmitFn, class PrunedFn>
    bool run_worker(ScanScratch& scratch, EmitFn&& emit, PrunedFn&& pruned) {
        WorkerTallies t;
        std::vector<std::uint32_t> overflow;
        bool keep = cohort_mode_
                        ? claim_cohorts(scratch, emit, pruned, overflow, t)
                        : claim_subjects(scratch, emit, overflow, t);
        // Final stage: settle the deferred overflow batch with wide
        // kernels.
        std::size_t deferred_settled = 0;
        for (const std::uint32_t idx : overflow) {
            if (!keep) break;
            const Score s = aligner_->rescore_wide(subjects_.subject(idx),
                                                   scratch, /*trusted=*/true);
            keep = emit(idx, subjects_.lengths[idx], s);
            ++deferred_settled;
        }
        // Emit contract: unless a callback cancelled the scan, every
        // subject this worker claimed either settles exactly once — in
        // stage 2 for the in-range scores (settled8), in a wide rescore
        // (per-claim drain or the final batch) for the deferred rest —
        // or is reported pruned exactly once.
        SWH_DCHECK(!keep || deferred_settled == overflow.size(),
                   "deferred overflow batch must settle completely");
        SWH_DCHECK(!keep ||
                       t.settled8 + t.settled_wide + deferred_settled ==
                           t.subjects_interseq + t.subjects_striped,
                   "emit contract: one settled score per claimed subject");
        aligner_->credit_runs8(t.settled8);
        credit_dispatch(t);
        return keep;
    }

    /// Exhaustive-caller convenience: no pruning observer. With the
    /// prefilter armed the pruned subjects are still skipped — they are
    /// just not reported.
    template <class EmitFn>
    bool run_worker(ScanScratch& scratch, EmitFn&& emit) {
        return run_worker(scratch, emit,
                          [](std::uint32_t, std::uint32_t) { return true; });
    }

    /// Rewinds the shared cursor for another scan of the same subjects.
    void reset() { next_.store(0, std::memory_order_relaxed); }

    std::size_t chunk() const { return chunk_; }
    std::size_t count() const { return subjects_.count; }
    const StripedAligner& aligner() const { return *aligner_; }
    bool cohort_mode() const { return cohort_mode_; }

    /// True when the stage-1 prefilter can run: a threshold feed is
    /// attached and the scan is in cohort mode (the ungapped kernels
    /// share the cohort geometry). Whether it actually prunes depends
    /// on the threshold value at each cohort.
    bool prefilter_armed() const {
        return threshold_ != nullptr && cohort_mode_;
    }

    /// Exact-stage kernel selection counters (cumulative across workers
    /// and resets). Subjects deferred to the wide rescore are counted
    /// under the kernel that deferred them; pruned subjects appear in
    /// neither (see filter_stats).
    struct DispatchStats {
        std::uint64_t cohorts_interseq = 0;
        std::uint64_t cohorts_striped = 0;
        std::uint64_t subjects_interseq = 0;
        std::uint64_t subjects_striped = 0;
    };
    DispatchStats dispatch_stats() const;

    /// Stage-1 prefilter counters (cumulative across workers and
    /// resets). `cohorts_filtered` counts ungapped u8 sweeps actually
    /// run (threshold was live); `rebounds16` the cohorts whose
    /// u8-saturated lanes were re-bounded at 16 bits; `subjects_pruned`
    /// the lanes proven out of the top-k and skipped.
    struct FilterStats {
        std::uint64_t cohorts_filtered = 0;
        std::uint64_t rebounds16 = 0;
        std::uint64_t subjects_pruned = 0;
    };
    FilterStats filter_stats() const;

private:
    struct WorkerTallies {
        std::uint64_t settled8 = 0;
        std::uint64_t settled_wide = 0;
        std::uint64_t cohorts_interseq = 0;
        std::uint64_t cohorts_striped = 0;
        std::uint64_t subjects_interseq = 0;
        std::uint64_t subjects_striped = 0;
        std::uint64_t cohorts_filtered = 0;
        std::uint64_t rebounds16 = 0;
        std::uint64_t pruned = 0;
    };

    std::uint32_t slot_index(std::size_t slot) const {
        return subjects_.order != nullptr ? subjects_.order[slot]
                                          : static_cast<std::uint32_t>(slot);
    }

    /// Legacy claim unit: chunks of scan-order subjects, striped u8.
    template <class EmitFn>
    bool claim_subjects(ScanScratch& scratch, EmitFn&& emit,
                        std::vector<std::uint32_t>& overflow,
                        WorkerTallies& t) {
        bool keep = true;
        const std::size_t n = subjects_.count;
        while (keep) {
            const std::size_t begin =
                next_.fetch_add(chunk_, std::memory_order_relaxed);
            if (begin >= n) break;
            const std::size_t end = std::min(begin + chunk_, n);
            for (std::size_t slot = begin; slot < end && keep; ++slot) {
                keep = score_striped(slot_index(slot), scratch, emit, overflow,
                                     t);
            }
        }
        return keep;
    }

    /// Stage-1 prefilter over one cohort: returns the survivor lane
    /// mask (within `used`). Conservative by construction — a lane is
    /// cleared only when its gap-slack chain bound (align/ungapped.hpp)
    /// provably falls strictly below `tau`; u8-saturated lanes are
    /// re-bounded at 16 bits, and i16-saturated lanes always survive.
    std::uint64_t filter_cohort(const CohortDesc& d, std::uint64_t used,
                                Score tau, ScanScratch& scratch,
                                WorkerTallies& t) {
        ++t.cohorts_filtered;
        std::uint8_t bound8[64];
        const Code* cols = cohorts_.arena + d.offset;
        const std::size_t qlen = aligner_->interseq()->query_len;
        std::uint64_t sat;
        std::uint64_t survive;
        if (qlen <= kFilterChunkRows) {
            sat = sw_ungapped_interseq_u8(*aligner_->interseq(), cols,
                                          d.columns, aligner_->gap(),
                                          aligner_->isa(), scratch, bound8);
            // Non-saturated lanes hold exact chain bounds strictly
            // below 255 - bias <= 255, so clamping the floor to 255
            // prunes them correctly even when tau exceeds the u8 range.
            const std::uint8_t floor8 =
                static_cast<std::uint8_t>(std::min<Score>(tau, 255));
            survive =
                (lanes_at_least(bound8, floor8, aligner_->isa()) | sat) &
                used;
        } else {
            // Long query: bound kFilterChunkRows-row tiles separately
            // and sum per lane (align/ungapped.hpp) — each tile's DP
            // state stays L1-resident and its bound in u8 range.
            const std::size_t tiles =
                (qlen + kFilterChunkRows - 1) / kFilterChunkRows;
            const std::size_t rows = (qlen + tiles - 1) / tiles;
            Score acc[64] = {};
            sat = 0;
            for (std::size_t r0 = 0; r0 < qlen; r0 += rows) {
                sat |= sw_ungapped_interseq_u8(
                    *aligner_->interseq(), cols, d.columns, aligner_->gap(),
                    aligner_->isa(), scratch, bound8, r0, r0 + rows);
                for (std::uint32_t l = 0; l < d.lanes_used; ++l) {
                    acc[l] += static_cast<Score>(bound8[l]);
                }
            }
            survive = sat & used;
            for (std::uint32_t l = 0; l < d.lanes_used; ++l) {
                if (acc[l] >= tau) survive |= std::uint64_t{1} << l;
            }
            survive &= used;
        }
        if (std::popcount(sat & used) >= kRebound16MinLanes) {
            // Saturated lanes carry no trusted u8 bound; one 16-bit
            // sweep re-bounds the whole cohort so they can still prune.
            // Below the lane floor the sweep costs more than letting
            // the stragglers through to the exact stage.
            ++t.rebounds16;
            std::int16_t bound16[64];
            const std::uint64_t sat16 = sw_ungapped_interseq_i16(
                *aligner_->interseq(), cols, d.columns, aligner_->gap(),
                aligner_->isa(), scratch, bound16);
            for (std::uint32_t l = 0; l < d.lanes_used; ++l) {
                const std::uint64_t bit = std::uint64_t{1} << l;
                if ((sat & bit) == 0) continue;
                if ((sat16 & bit) == 0 &&
                    static_cast<Score>(bound16[l]) < tau) {
                    survive &= ~bit;
                }
            }
        }
        return survive;
    }

    /// Cohort claim unit: whole width-W cohorts. Stage 1 prunes lanes
    /// when the threshold feed is live, stage 2 exact-scores the
    /// survivors with the kernel from choice_ (cutting over to striped
    /// when few lanes survive an interseq-choice cohort).
    template <class EmitFn, class PrunedFn>
    bool claim_cohorts(ScanScratch& scratch, EmitFn&& emit, PrunedFn&& pruned,
                       std::vector<std::uint32_t>& overflow,
                       WorkerTallies& t) {
        bool keep = true;
        const std::size_t n = cohorts_.count;
        const std::size_t claim = std::max<std::size_t>(
            1, chunk_ / static_cast<std::size_t>(cohorts_.lanes));
        std::uint8_t lane_best[64];
        while (keep) {
            const std::size_t begin =
                next_.fetch_add(claim, std::memory_order_relaxed);
            if (begin >= n) break;
            const std::size_t end = std::min(begin + claim, n);
            for (std::size_t slot = begin; slot < end && keep; ++slot) {
                const std::size_t c =
                    prime_order_.empty() ? slot : prime_order_[slot];
                const CohortDesc& d = cohorts_.cohorts[c];
                const std::uint64_t used =
                    d.lanes_used >= 64
                        ? ~std::uint64_t{0}
                        : (std::uint64_t{1} << d.lanes_used) - 1;
                std::uint64_t survive = used;
                if (threshold_ != nullptr) {
                    // Re-read per cohort: the threshold rises as exact
                    // hits accumulate, so late cohorts prune harder.
                    // tau <= 0 (including TopK::kNoThreshold) cannot
                    // prune — chain bounds are non-negative.
                    const Score tau =
                        threshold_->load(std::memory_order_relaxed);
                    if (tau > 0) {
                        survive = filter_cohort(d, used, tau, scratch, t);
                    }
                }
                if (survive != used) {
                    for (std::uint32_t l = 0; l < d.lanes_used && keep;
                         ++l) {
                        if ((survive >> l) & 1) continue;
                        const std::uint32_t idx =
                            slot_index(d.first_slot + l);
                        ++t.pruned;
                        keep = pruned(idx, subjects_.lengths[idx]);
                    }
                    if (!keep) break;
                    if (survive == 0) continue;
                }
                const auto nsurv = static_cast<std::uint32_t>(
                    std::popcount(survive));
                if (choice_[c] &&
                    nsurv * kFunnelStripedCutover > d.lanes_used) {
                    ++t.cohorts_interseq;
                    const std::uint64_t ovf = sw_interseq_u8(
                        *aligner_->interseq(), cohorts_.arena + d.offset,
                        d.columns, aligner_->gap(), aligner_->isa(), scratch,
                        lane_best);
                    for (std::uint32_t l = 0; l < d.lanes_used && keep; ++l) {
                        if (((survive >> l) & 1) == 0) continue;
                        const std::uint32_t idx =
                            slot_index(d.first_slot + l);
                        if ((ovf >> l) & 1) {
                            overflow.push_back(idx);
                            ++t.subjects_interseq;
                            continue;
                        }
                        ++t.settled8;
                        ++t.subjects_interseq;
                        keep = emit(idx, subjects_.lengths[idx],
                                    static_cast<Score>(lane_best[l]));
                    }
                } else {
                    ++t.cohorts_striped;
                    for (std::uint32_t l = 0; l < d.lanes_used && keep; ++l) {
                        if (((survive >> l) & 1) == 0) continue;
                        keep = score_striped(slot_index(d.first_slot + l),
                                             scratch, emit, overflow, t);
                    }
                }
            }
            // With the prefilter armed, settle this claim's deferred
            // lanes now instead of at end of run: the u8-overflowed
            // lanes ARE the likely top scorers, and the threshold can
            // only rise once their exact scores reach the caller. An
            // exhaustive scan keeps the single end-of-run batch (one
            // cold touch of the wide profile).
            if (threshold_ != nullptr && !overflow.empty()) {
                for (std::size_t o = 0; o < overflow.size() && keep; ++o) {
                    const std::uint32_t idx = overflow[o];
                    const Score s = aligner_->rescore_wide(
                        subjects_.subject(idx), scratch, /*trusted=*/true);
                    ++t.settled_wide;
                    keep = emit(idx, subjects_.lengths[idx], s);
                }
                overflow.clear();
            }
        }
        return keep;
    }

    template <class EmitFn>
    bool score_striped(std::uint32_t idx, ScanScratch& scratch, EmitFn&& emit,
                       std::vector<std::uint32_t>& overflow,
                       WorkerTallies& t) {
        ++t.subjects_striped;
        const StripedResult r =
            aligner_->score_u8(subjects_.subject(idx), scratch,
                               /*trusted=*/true);
        if (r.overflow) {
            overflow.push_back(idx);
            return true;
        }
        ++t.settled8;
        return emit(idx, subjects_.lengths[idx], r.score);
    }

    void credit_dispatch(const WorkerTallies& t);

    const StripedAligner* aligner_;
    PackedSubjects subjects_;
    std::size_t chunk_;
    InterleavedCohorts cohorts_;
    bool cohort_mode_ = false;
    /// Pruning threshold feed (null = prefilter unarmed). Owned by the
    /// caller; its value must only ever increase.
    const std::atomic<Score>* threshold_ = nullptr;
    /// Per-cohort kernel choice (1 = inter-sequence, 0 = striped),
    /// precomputed at construction from query length and cohort fill.
    std::vector<std::uint8_t> choice_;
    /// Claim-slot -> cohort-index permutation, built only when the
    /// prefilter is armed: the kPrimeCohorts cohorts whose mean subject
    /// length is closest to the query's come first (threshold priming),
    /// the rest keep the layout's longest-first order. Empty = identity
    /// (exhaustive scans are untouched).
    std::vector<std::uint32_t> prime_order_;
    std::atomic<std::size_t> next_{0};
    std::atomic<std::uint64_t> cohorts_interseq_{0}, cohorts_striped_{0};
    std::atomic<std::uint64_t> subjects_interseq_{0}, subjects_striped_{0};
    std::atomic<std::uint64_t> cohorts_filtered_{0}, rebounds16_{0};
    std::atomic<std::uint64_t> subjects_pruned_{0};
};

}  // namespace swh::align

#pragma once

// Two-pass batched database scan over a packed subject arena.
//
// Pass 1 runs every subject through the 8-bit kernel and defers the
// (rare) overflowed ones; pass 2 settles the deferred batch with the
// i16 kernel / scalar int32 fallback. Compared with the seed's inline
// 8 -> 16 -> 32 escalation per subject, this keeps the u8 profile and
// scratch hot in cache during the bulk of the scan and touches the wide
// profile only once, at the end of a worker's claim.
//
// The scanner consumes a non-owning PackedSubjects view so swh_align
// stays independent of swh_db (which produces the view, see
// db::PackedDatabase).

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "align/striped.hpp"

namespace swh::align {

/// Non-owning view of a packed subject set: one contiguous residue
/// arena plus per-subject offsets/lengths and a scan permutation.
/// Residues are validated at pack time; `max_code` carries the proof,
/// which DatabaseScanner checks once against the query profile so the
/// kernels can skip the per-residue alphabet check.
struct PackedSubjects {
    const Code* arena = nullptr;
    const std::uint64_t* offsets = nullptr;  ///< start of subject i
    const std::uint32_t* lengths = nullptr;
    /// Scan permutation (length-sorted, longest first). Null = identity.
    const std::uint32_t* order = nullptr;
    std::size_t count = 0;
    std::size_t max_length = 0;
    Code max_code = 0;  ///< largest residue code present in the arena

    std::span<const Code> subject(std::size_t i) const {
        return {arena + offsets[i], lengths[i]};
    }
};

/// Thread-safe scan orchestrator: workers claim chunks of subjects from
/// a shared cursor (one atomic op per ~chunk subjects instead of one
/// per subject) and run the two-pass scan. One instance per
/// (aligner, database) scan; call run_worker from each worker thread
/// with a thread-private ScanScratch.
class DatabaseScanner {
public:
    static constexpr std::size_t kDefaultChunk = 64;

    /// Validates once that every packed residue fits the aligner's
    /// profile alphabet (throws ContractError otherwise) — the per-
    /// subject kernel calls then run with the check compiled out.
    DatabaseScanner(const StripedAligner& aligner, PackedSubjects subjects,
                    std::size_t chunk = kDefaultChunk);

    /// Claims chunks until the database is exhausted or `emit` asks to
    /// stop. `emit(db_index, length, score) -> bool` is called exactly
    /// once per settled subject — in scan order for pass-1 subjects,
    /// then for this worker's deferred overflow batch; `db_index` is
    /// always the ORIGINAL database index regardless of scan order.
    /// Returns false iff an emit call returned false (scan cancelled).
    template <class EmitFn>
    bool run_worker(ScanScratch& scratch, EmitFn&& emit) {
        std::vector<std::uint32_t> overflow;
        std::uint64_t settled8 = 0;
        bool keep = true;
        const std::size_t n = subjects_.count;
        while (keep) {
            const std::size_t begin =
                next_.fetch_add(chunk_, std::memory_order_relaxed);
            if (begin >= n) break;
            const std::size_t end = std::min(begin + chunk_, n);
            for (std::size_t slot = begin; slot < end && keep; ++slot) {
                const std::uint32_t idx =
                    subjects_.order != nullptr
                        ? subjects_.order[slot]
                        : static_cast<std::uint32_t>(slot);
                const std::span<const Code> subject = subjects_.subject(idx);
                const StripedResult r =
                    aligner_->score_u8(subject, scratch, /*trusted=*/true);
                if (!r.overflow) {
                    ++settled8;
                    keep = emit(idx, subjects_.lengths[idx], r.score);
                } else {
                    overflow.push_back(idx);
                }
            }
        }
        // Pass 2: settle the deferred overflow batch with wide kernels.
        for (const std::uint32_t idx : overflow) {
            if (!keep) break;
            const Score s = aligner_->rescore_wide(subjects_.subject(idx),
                                                   scratch, /*trusted=*/true);
            keep = emit(idx, subjects_.lengths[idx], s);
        }
        aligner_->credit_runs8(settled8);
        return keep;
    }

    /// Rewinds the shared cursor for another scan of the same subjects.
    void reset() { next_.store(0, std::memory_order_relaxed); }

    std::size_t chunk() const { return chunk_; }
    std::size_t count() const { return subjects_.count; }
    const StripedAligner& aligner() const { return *aligner_; }

private:
    const StripedAligner* aligner_;
    PackedSubjects subjects_;
    std::size_t chunk_;
    std::atomic<std::size_t> next_{0};
};

}  // namespace swh::align

#pragma once

// Three-stage funnel scan over a packed subject arena.
//
// Stage 1 (optional, cohort mode only): an allocation-free ungapped
// inter-sequence prefilter (align/ungapped.hpp) sweeps each cohort and
// turns the per-lane ungapped maxima into provable upper bounds on the
// gapped scores via the per-query gap-slack bound. Lanes whose bound
// falls strictly below the caller-published pruning threshold — fed
// back from the running k-th best exact score — are skipped entirely;
// anything unprovable (u8 saturation the 16-bit re-bound cannot clear)
// is rescored, so the surviving top-k is bit-identical to an exhaustive
// scan. See DESIGN.md "Prefilter funnel" for the soundness argument.
//
// Stage 2 runs every survivor through an 8-bit exact kernel and defers
// the (rare) overflowed ones; stage 3 settles the deferred batch — in
// cohort mode by re-packing length-adjacent groups into dense scratch
// cohorts for one i16 inter-sequence pass each (scalar int32 for the
// rare lane that saturates 16 bits too), serial striped i16 only for
// sub-batch remainders and the packed path. Compared with the seed's
// inline 8 -> 16 -> 32 escalation per subject, this keeps the u8
// profile and scratch hot in cache during the bulk of the scan, and
// the batched escalation amortises the wide-kernel memory traffic
// that a per-subject striped rescore pays anew for every subject.
//
// When the caller also provides a lane-interleaved cohort layout (see
// db::PackedDatabase::interleaved and align/interseq.hpp), stage 2
// dispatches adaptively per cohort: well-filled cohorts are scored W
// subjects at a time by the inter-sequence u8 kernel — untiled for
// queries up to kInterseqTileRows, query-tiled with carried column
// state beyond it, so the whole query-length range is eligible — while
// cohorts below the query-length-dependent fill bar fall back to the
// striped kernel per subject. The layout itself keeps low-fill
// stretches rare by re-packing ragged scan-order tails into dense
// compacted cohorts, and the funnel composes the same way: survivors
// of mostly-pruned cohorts are re-packed worker-locally into dense
// scratch cohorts instead of masking dead lanes. Overflowed lanes feed
// the same deferred escalation everywhere, so the emit contract
// (exactly one settled score per non-pruned subject, original
// db_index) is unchanged.
//
// The scanner consumes non-owning views so swh_align stays independent
// of swh_db (which produces the views, see db::PackedDatabase).

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "align/interseq.hpp"
#include "align/striped.hpp"
#include "align/ungapped.hpp"
#include "util/annotations.hpp"
#include "util/check.hpp"

namespace swh::align {

/// Non-owning view of a packed subject set: one contiguous residue
/// arena plus per-subject offsets/lengths and a scan permutation.
/// Residues are validated at pack time; `max_code` carries the proof,
/// which DatabaseScanner checks once against the query profile so the
/// kernels can skip the per-residue alphabet check.
struct PackedSubjects {
    const Code* arena = nullptr;
    const std::uint64_t* offsets = nullptr;  ///< start of subject i
    const std::uint32_t* lengths = nullptr;
    /// Scan permutation (length-sorted, longest first). Null = identity.
    const std::uint32_t* order = nullptr;
    std::size_t count = 0;
    std::size_t max_length = 0;
    Code max_code = 0;  ///< largest residue code present in the arena

    std::span<const Code> subject(std::size_t i) const {
        return {arena + offsets[i], lengths[i]};
    }
};

/// Thread-safe scan orchestrator: workers claim work from a shared
/// cursor (chunks of subjects, or whole cohorts when a lane-interleaved
/// layout is attached) and run the two-pass scan. One instance per
/// (aligner, database) scan; call run_worker from each worker thread
/// with a thread-private ScanScratch.
class DatabaseScanner {
public:
    static constexpr std::size_t kDefaultChunk = 64;

    /// Baseline minimum real-residue fill of a cohort (percent of
    /// columns * full width) for inter-sequence dispatch at long query
    /// lengths; see min_fill_pct() for the query-length-dependent bar.
    static constexpr std::uint64_t kInterseqMinFillPct = 75;

    /// Full-width fill bar for inter-sequence dispatch as a function of
    /// query length. The interseq kernel pays columns * W cells no
    /// matter how many lanes are real, so it wins only when fill
    /// exceeds ~1/alpha, where alpha is its full-fill advantage over
    /// the striped kernel — measured ~2.4x for short queries, shrinking
    /// towards ~1.3x once the striped kernel's lazy-F overhead
    /// amortises over a long query.
    static constexpr std::uint64_t min_fill_pct(std::size_t qlen) {
        return qlen <= 128 ? 45 : qlen <= 384 ? 60 : kInterseqMinFillPct;
    }

    /// Partial-survivor cutover: when the prefilter leaves an
    /// interseq-choice cohort with at most 1/kFunnelStripedCutover of
    /// its used lanes, running the full-width kernel on it would waste
    /// most of its fixed cost on dead lanes. The survivors are instead
    /// batched worker-locally and re-packed W at a time into a dense
    /// scratch cohort for the inter-sequence kernel (see flush_repack);
    /// only the sub-width remainder of a worker's final batch still
    /// falls back to the striped kernel, when it is too small to meet
    /// the fill bar.
    static constexpr std::uint32_t kFunnelStripedCutover = 4;

    /// Minimum u8-saturated lane count before the 16-bit re-bound sweep
    /// pays for itself: the sweep costs about two u8 sweeps for the
    /// whole cohort, so when only a few lanes saturated it is cheaper
    /// to pass them straight to the exact stage (which escalates them
    /// anyway if they are genuinely large).
    static constexpr int kRebound16MinLanes = 8;

    /// Minimum deferred-overflow group size before the stage-3 drain
    /// re-packs it into a dense cohort for one (tiled) i16
    /// inter-sequence pass instead of serial striped i16 rescores. The
    /// cohort pass pays a fixed full-width sweep whether or not every
    /// lane is real, but runs ~5x more lane-cells/s on long queries
    /// (the striped i16 profile re-streams from L2+ for every subject;
    /// the inter-sequence pass reads one 32-byte LUT row per cell) and
    /// the lo-half kernel variant halves the fixed cost again for
    /// half-width groups — break-even measures ~6 lanes half-width,
    /// ~13 full-width. Deferred lanes are homolog families of similar
    /// length, so groups at this bar are the common case.
    static constexpr std::size_t kEscalateBatchMin = 8;

    /// Query rows per prefilter tile. Long queries are bounded tile by
    /// tile and the per-lane tile bounds summed (sound — see
    /// align/ungapped.hpp): each tile's two DP rows stay L1-resident
    /// where a monolithic sweep of a 500+ residue query spills, and a
    /// tile's maximum rarely saturates the 8-bit kernel, so the wide
    /// re-bound sweep stays rare even for long subjects.
    static constexpr std::size_t kFilterChunkRows = 256;

    /// Consecutive zero-prune cohorts before a worker turns its
    /// prefilter off for the rest of its claims (long-query chunked
    /// regime only; armed claims visit non-prime cohorts in ascending
    /// column order, so once bounds stop clearing tau at some subject
    /// length they stay hopeless for every longer cohort — the summed
    /// tile bound only grows with subject length). Three in a row
    /// tolerates an isolated all-homolog cohort without disabling a
    /// still-productive filter.
    static constexpr int kFilterOffStreak = 3;

    /// Cohorts scanned first when the prefilter is armed: the ones
    /// whose subject lengths sit closest to the query's, where true
    /// homologs — the scores that drive the pruning threshold up — are
    /// most likely to live. Priming turns the dynamic threshold from a
    /// slow ramp into a near-final value for the bulk of the scan; any
    /// scan order yields the same top-k (see run_worker).
    static constexpr std::size_t kPrimeCohorts = 4;

    /// Validates once that every packed residue fits the aligner's
    /// profile alphabet (throws ContractError otherwise) — the per-
    /// subject kernel calls then run with the check compiled out. If
    /// `cohorts` is non-empty, the aligner must have an inter-sequence
    /// profile and the cohort width must match its u8 lane count; the
    /// per-cohort kernel choice is precomputed here.
    ///
    /// `threshold`, when non-null, arms the stage-1 prefilter (cohort
    /// mode only; inert otherwise): each cohort loads the current value
    /// — the caller keeps it at the running k-th best exact score, or
    /// any value <= 0 / engines::TopK::kNoThreshold while fewer than k
    /// hits exist — and prunes lanes whose gap-slack score bound falls
    /// strictly below it. The atomic must only ever increase and must
    /// outlive the scanner; monotonicity is what makes a stale read
    /// safe (a lower threshold only prunes less).
    DatabaseScanner(const StripedAligner& aligner, PackedSubjects subjects,
                    std::size_t chunk = kDefaultChunk,
                    InterleavedCohorts cohorts = {},
                    const std::atomic<Score>* threshold = nullptr);

    /// Claims work until the database is exhausted or `emit` asks to
    /// stop. `emit(db_index, length, score) -> bool` is called exactly
    /// once per settled subject — in scan order for stage-2 subjects,
    /// then for this worker's deferred overflow batch (drained after
    /// every claim when the prefilter is armed: the deferred lanes are
    /// the likely top scorers, and settling them early is what feeds
    /// the pruning threshold while the scan is still young); `db_index`
    /// is always the ORIGINAL database index regardless of scan order.
    /// `pruned(db_index, length) -> bool` is called exactly once per
    /// subject the prefilter proved out of the top-k (never called when
    /// the prefilter is unarmed). Once either callback returns false
    /// the worker settles no further subjects (the deferred batch
    /// included). Returns false iff a callback returned false (scan
    /// cancelled).
    template <class EmitFn, class PrunedFn>
    SWH_HOT_PATH bool run_worker(ScanScratch& scratch, EmitFn&& emit,
                                 PrunedFn&& pruned) {
        WorkerTallies t;
        std::vector<std::uint32_t> overflow;
        bool keep = cohort_mode_
                        ? claim_cohorts(scratch, emit, pruned, overflow, t)
                        : claim_subjects(scratch, emit, overflow, t);
        // Final stage (packed path only — cohort mode drains its own
        // batch, see drain_overflow): settle the deferred overflow
        // batch with the wide kernels.
        std::size_t deferred_settled = 0;
        for (const std::uint32_t idx : overflow) {
            if (!keep) break;
            const Score s = aligner_->rescore_wide(subjects_.subject(idx),
                                                   scratch, /*trusted=*/true);
            keep = emit(idx, subjects_.lengths[idx], s);
            ++deferred_settled;
        }
        // Emit contract: unless a callback cancelled the scan, every
        // subject this worker claimed either settles exactly once — in
        // stage 2 for the in-range scores (settled8), in a wide rescore
        // (per-claim drain or the final batch) for the deferred rest —
        // or is reported pruned exactly once.
        SWH_DCHECK(!keep || deferred_settled == overflow.size(),
                   "deferred overflow batch must settle completely");
        SWH_DCHECK(!keep ||
                       t.settled8 + t.settled_wide + deferred_settled ==
                           t.subjects_interseq + t.subjects_compacted +
                               t.subjects_striped,
                   "emit contract: one settled score per claimed subject");
        aligner_->credit_runs8(t.settled8);
        credit_dispatch(t);
        return keep;
    }

    /// Exhaustive-caller convenience: no pruning observer. With the
    /// prefilter armed the pruned subjects are still skipped — they are
    /// just not reported.
    template <class EmitFn>
    SWH_HOT_PATH bool run_worker(ScanScratch& scratch, EmitFn&& emit) {
        return run_worker(scratch, emit,
                          [](std::uint32_t, std::uint32_t) { return true; });
    }

    /// Rewinds the shared cursor for another scan of the same subjects.
    void reset() { next_.store(0, std::memory_order_relaxed); }

    std::size_t chunk() const { return chunk_; }
    std::size_t count() const { return subjects_.count; }
    const StripedAligner& aligner() const { return *aligner_; }
    bool cohort_mode() const { return cohort_mode_; }

    /// True when the stage-1 prefilter can run: a threshold feed is
    /// attached and the scan is in cohort mode (the ungapped kernels
    /// share the cohort geometry). Whether it actually prunes depends
    /// on the threshold value at each cohort.
    bool prefilter_armed() const {
        return threshold_ != nullptr && cohort_mode_;
    }

    /// Exact-stage kernel selection counters (cumulative across workers
    /// and resets). Subjects deferred to the wide rescore are counted
    /// under the kernel that deferred them; pruned subjects appear in
    /// neither (see filter_stats). `cohorts_interseq` counts every
    /// inter-sequence-scored cohort; `cohorts_tiled` (query-tiled
    /// kernel) and `cohorts_compacted` (layout-compacted membership)
    /// are overlapping subsets of it. `subjects_compacted` separates
    /// the ragged-tail story from the striped one: subjects scored
    /// inter-sequence out of a layout-compacted cohort or a worker-side
    /// survivor repack, so `subjects_striped` counts only genuine
    /// striped-head fallbacks.
    struct DispatchStats {
        std::uint64_t cohorts_interseq = 0;
        std::uint64_t cohorts_tiled = 0;
        std::uint64_t cohorts_compacted = 0;
        std::uint64_t cohorts_striped = 0;
        std::uint64_t repacks = 0;  ///< dense survivor cohorts assembled
        /// Dense i16 escalation cohorts the stage-3 drain assembled
        /// from deferred u8-overflow lanes (each replaces up to W
        /// serial striped rescores with one inter-sequence pass).
        std::uint64_t escalations16 = 0;
        std::uint64_t subjects_interseq = 0;
        std::uint64_t subjects_compacted = 0;
        std::uint64_t subjects_striped = 0;
    };
    DispatchStats dispatch_stats() const;

    /// Stage-1 prefilter counters (cumulative across workers and
    /// resets). `cohorts_filtered` counts ungapped u8 sweeps actually
    /// run (threshold was live); `rebounds16` the cohorts whose
    /// u8-saturated lanes were re-bounded at 16 bits; `subjects_pruned`
    /// the lanes proven out of the top-k and skipped; `filter_offs`
    /// the cohorts whose sweep the adaptive filter-off guard skipped
    /// after the chain bound stopped pruning (see claim_cohorts).
    struct FilterStats {
        std::uint64_t cohorts_filtered = 0;
        std::uint64_t rebounds16 = 0;
        std::uint64_t subjects_pruned = 0;
        std::uint64_t filter_offs = 0;
    };
    FilterStats filter_stats() const;

private:
    /// Exact-stage route precomputed per cohort (see choice_).
    enum class CohortPath : std::uint8_t {
        kStriped = 0,   ///< per-subject striped fallback (low fill)
        kInterseq = 1,  ///< untiled inter-sequence u8
        kTiled = 2,     ///< query-tiled inter-sequence u8
    };

    struct WorkerTallies {
        std::uint64_t settled8 = 0;
        std::uint64_t settled_wide = 0;
        std::uint64_t cohorts_interseq = 0;
        std::uint64_t cohorts_tiled = 0;
        std::uint64_t cohorts_compacted = 0;
        std::uint64_t cohorts_striped = 0;
        std::uint64_t repacks = 0;
        std::uint64_t escalations16 = 0;
        std::uint64_t subjects_interseq = 0;
        std::uint64_t subjects_compacted = 0;
        std::uint64_t subjects_striped = 0;
        std::uint64_t cohorts_filtered = 0;
        std::uint64_t rebounds16 = 0;
        std::uint64_t pruned = 0;
        std::uint64_t filter_offs = 0;
    };

    std::uint32_t slot_index(std::size_t slot) const {
        return subjects_.order != nullptr ? subjects_.order[slot]
                                          : static_cast<std::uint32_t>(slot);
    }

    /// Original database index of lane l of cohort d: through the
    /// layout's member table when present (compacted cohorts have
    /// non-consecutive members), else the consecutive-slot rule.
    std::uint32_t member_index(const CohortDesc& d, std::uint32_t l) const {
        const std::size_t slot =
            cohorts_.slots != nullptr
                ? cohorts_.slots[d.first_slot + l]
                : d.first_slot + static_cast<std::size_t>(l);
        return slot_index(slot);
    }

    /// Legacy claim unit: chunks of scan-order subjects, striped u8.
    template <class EmitFn>
    SWH_HOT_PATH bool claim_subjects(ScanScratch& scratch, EmitFn&& emit,
                        std::vector<std::uint32_t>& overflow,
                        WorkerTallies& t) {
        bool keep = true;
        const std::size_t n = subjects_.count;
        while (keep) {
            const std::size_t begin =
                next_.fetch_add(chunk_, std::memory_order_relaxed);
            if (begin >= n) break;
            const std::size_t end = std::min(begin + chunk_, n);
            for (std::size_t slot = begin; slot < end && keep; ++slot) {
                keep = score_striped(slot_index(slot), scratch, emit, overflow,
                                     t);
            }
        }
        return keep;
    }

    /// Cost model of the 16-bit re-bound sweep over one striped-path
    /// cohort: the sweep pays the full W x columns cohort geometry at
    /// roughly half the striped u8 kernel's cell rate, and saves at
    /// most the striped scoring of the saturated lanes themselves.
    /// Worth running only when those lanes' summed lengths cover at
    /// least half the sweep's footprint — a densely saturated cohort,
    /// not a handful of long stragglers rattling in a ragged one
    /// (exactly what the long planted families look like to a short
    /// query, where the sweep measurably costs more than it saves).
    SWH_HOT_PATH bool rebound_pays(const CohortDesc& d,
                                   std::uint64_t sat_used) const {
        std::uint64_t sat_len = 0;
        for (std::uint32_t l = 0; l < d.lanes_used; ++l) {
            if ((sat_used >> l) & 1) {
                sat_len += subjects_.lengths[member_index(d, l)];
            }
        }
        return 2 * sat_len >=
               static_cast<std::uint64_t>(cohorts_.lanes) * d.columns;
    }

    /// Stage-1 prefilter over one cohort: returns the survivor lane
    /// mask (within `used`). Conservative by construction — a lane is
    /// cleared only when its gap-slack chain bound (align/ungapped.hpp)
    /// provably falls strictly below `tau`; u8-saturated lanes are
    /// re-bounded at 16 bits (only when `striped_exact` says the
    /// cohort's exact fallback is per-lane striped — see below), and
    /// i16-saturated lanes always survive.
    SWH_HOT_PATH std::uint64_t filter_cohort(const CohortDesc& d,
                                             std::uint64_t used,
                                Score tau, bool striped_exact,
                                ScanScratch& scratch, WorkerTallies& t) {
        ++t.cohorts_filtered;
        std::uint8_t bound8[64];
        const Code* cols = cohorts_.arena + d.offset;
        const std::size_t qlen = aligner_->interseq()->query_len;
        std::uint64_t sat;
        std::uint64_t survive;
        if (qlen <= kFilterChunkRows) {
            sat = sw_ungapped_interseq_u8(*aligner_->interseq(), cols,
                                          d.columns, aligner_->gap(),
                                          aligner_->isa(), scratch, bound8);
            // Non-saturated lanes hold exact chain bounds strictly
            // below 255 - bias <= 255, so clamping the floor to 255
            // prunes them correctly even when tau exceeds the u8 range.
            const std::uint8_t floor8 =
                static_cast<std::uint8_t>(std::min<Score>(tau, 255));
            survive =
                (lanes_at_least(bound8, floor8, aligner_->isa()) | sat) &
                used;
        } else {
            // Long query: bound kFilterChunkRows-row tiles separately
            // and sum per lane (align/ungapped.hpp) — each tile's DP
            // state stays L1-resident and its bound in u8 range. The
            // summed bound loosens with tile count (each junction
            // forgoes a link charge), so against subjects of comparable
            // length it stops pruning — the adaptive filter-off guard
            // in claim_cohorts handles that regime; tightening the
            // bound here does not (a single-tile i16 sweep was tried
            // and measures ~40% SLOWER per cohort than the exact tiled
            // u8 kernel it feeds, while still pruning nothing long).
            const std::size_t tiles =
                (qlen + kFilterChunkRows - 1) / kFilterChunkRows;
            const std::size_t rows = (qlen + tiles - 1) / tiles;
            Score acc[64] = {};
            sat = 0;
            for (std::size_t r0 = 0; r0 < qlen; r0 += rows) {
                sat |= sw_ungapped_interseq_u8(
                    *aligner_->interseq(), cols, d.columns, aligner_->gap(),
                    aligner_->isa(), scratch, bound8, r0, r0 + rows);
                for (std::uint32_t l = 0; l < d.lanes_used; ++l) {
                    acc[l] += static_cast<Score>(bound8[l]);
                }
            }
            survive = sat & used;
            for (std::uint32_t l = 0; l < d.lanes_used; ++l) {
                if (acc[l] >= tau) survive |= std::uint64_t{1} << l;
            }
            survive &= used;
        }
        if (striped_exact && qlen <= kFilterChunkRows &&
            std::popcount(sat & used) >= kRebound16MinLanes &&
            rebound_pays(d, sat & used)) {
            // Saturated lanes carry no trusted u8 bound; one 16-bit
            // sweep re-bounds the whole cohort so they can still prune.
            // It only pays where the exact fallback is per-lane striped
            // — each pruned lane then saves a whole striped alignment.
            // On interseq-path cohorts the exact kernel scores all
            // lanes for one cohort-sweep price anyway, and the i16
            // ungapped sweep measures ~40% dearer than that kernel, so
            // there the stragglers go straight to the exact stage. The
            // single-chunk gate is a measurement too: the i16 sweep has
            // no row tiling, so past kFilterChunkRows it spills L1 and
            // runs ~30 ms/cohort at qlen 1025 — more than the striped
            // u8 scoring of every lane it could hope to prune.
            ++t.rebounds16;
            std::int16_t bound16[64];
            const std::uint64_t sat16 = sw_ungapped_interseq_i16(
                *aligner_->interseq(), cols, d.columns, aligner_->gap(),
                aligner_->isa(), scratch, bound16);
            for (std::uint32_t l = 0; l < d.lanes_used; ++l) {
                const std::uint64_t bit = std::uint64_t{1} << l;
                if ((sat & bit) == 0) continue;
                if ((sat16 & bit) == 0 &&
                    static_cast<Score>(bound16[l]) < tau) {
                    survive &= ~bit;
                }
            }
        }
        return survive;
    }

    /// Cohort claim unit: whole cohorts of the interleaved layout.
    /// Stage 1 prunes lanes when the threshold feed is live, stage 2
    /// exact-scores the survivors with the route from choice_ —
    /// untiled or query-tiled inter-sequence for well-filled cohorts,
    /// per-subject striped for the low-fill rest — batching the
    /// survivors of mostly-pruned interseq cohorts into dense repacked
    /// cohorts instead of masking dead lanes.
    template <class EmitFn, class PrunedFn>
    SWH_HOT_PATH bool claim_cohorts(ScanScratch& scratch, EmitFn&& emit,
                                    PrunedFn&& pruned,
                       std::vector<std::uint32_t>& overflow,
                       WorkerTallies& t) {
        bool keep = true;
        const std::size_t n = cohorts_.count;
        const auto w = static_cast<std::size_t>(cohorts_.lanes);
        const std::size_t claim = std::max<std::size_t>(1, chunk_ / w);
        const std::size_t qlen =
            aligner_->interseq() != nullptr ? aligner_->interseq()->query_len
                                            : aligner_->query().size();
        std::uint8_t lane_best[64];
        InterseqColumnState colstate;
        // Survivor batch for the repack path; both vectors stay empty
        // (no allocation) until the prefilter actually starves a
        // cohort below the cutover.
        std::vector<std::uint32_t> pending;
        std::vector<Code> repack;
        // Adaptive filter-off: in the long-query chunked regime the
        // summed tile bound loosens until, at some subject length, it
        // stops clearing tau for anyone — from there every sweep is
        // pure overhead on exactly the cohorts that cost the most to
        // exact-score. Armed claims visit non-prime cohorts shortest
        // first, so a worker that sees kFilterOffStreak zero-prune
        // cohorts in a row has crossed that length and turns its
        // prefilter off for the rest of its claims. Skipping stage 1
        // never changes the result (all lanes simply survive).
        bool filter_off = false;
        int noprune_streak = 0;
        while (keep) {
            const std::size_t begin =
                next_.fetch_add(claim, std::memory_order_relaxed);
            if (begin >= n) break;
            const std::size_t end = std::min(begin + claim, n);
            for (std::size_t slot = begin; slot < end && keep; ++slot) {
                const std::size_t c =
                    prime_order_.empty() ? slot : prime_order_[slot];
                const CohortDesc& d = cohorts_.cohorts[c];
                const std::uint64_t used =
                    d.lanes_used >= 64
                        ? ~std::uint64_t{0}
                        : (std::uint64_t{1} << d.lanes_used) - 1;
                std::uint64_t survive = used;
                if (threshold_ != nullptr && !filter_off) {
                    // Re-read per cohort: the threshold rises as exact
                    // hits accumulate, so late cohorts prune harder.
                    // tau <= 0 (including TopK::kNoThreshold) cannot
                    // prune — chain bounds are non-negative.
                    const Score tau =
                        threshold_->load(std::memory_order_relaxed);
                    if (tau > 0) {
                        survive = filter_cohort(
                            d, used, tau,
                            choice_[c] == CohortPath::kStriped, scratch, t);
                        // Learn only off non-prime cohorts: the primed
                        // prefix is homolog-adjacent by construction,
                        // so its lanes surviving says nothing about
                        // bound looseness.
                        const bool prime = !prime_order_.empty() &&
                                           slot < kPrimeCohorts;
                        if (qlen > kFilterChunkRows && !prime) {
                            if (survive == used) {
                                if (++noprune_streak >= kFilterOffStreak) {
                                    filter_off = true;
                                }
                            } else {
                                noprune_streak = 0;
                            }
                        }
                    }
                } else if (threshold_ != nullptr) {
                    ++t.filter_offs;
                }
                if (survive != used) {
                    for (std::uint32_t l = 0; l < d.lanes_used && keep;
                         ++l) {
                        if ((survive >> l) & 1) continue;
                        const std::uint32_t idx = member_index(d, l);
                        ++t.pruned;
                        keep = pruned(idx, subjects_.lengths[idx]);
                    }
                    if (!keep) break;
                    if (survive == 0) continue;
                }
                const auto nsurv = static_cast<std::uint32_t>(
                    std::popcount(survive));
                const CohortPath path = choice_[c];
                const bool compacted =
                    (d.flags & CohortDesc::kCompacted) != 0;
                if (path != CohortPath::kStriped &&
                    nsurv * kFunnelStripedCutover > d.lanes_used) {
                    ++t.cohorts_interseq;
                    if (path == CohortPath::kTiled) ++t.cohorts_tiled;
                    if (compacted) ++t.cohorts_compacted;
                    const std::uint64_t ovf =
                        path == CohortPath::kTiled
                            ? sw_interseq_u8_tiled(
                                  *aligner_->interseq(),
                                  cohorts_.arena + d.offset, d.columns,
                                  aligner_->gap(), aligner_->isa(), scratch,
                                  colstate, lane_best)
                            : sw_interseq_u8(*aligner_->interseq(),
                                             cohorts_.arena + d.offset,
                                             d.columns, aligner_->gap(),
                                             aligner_->isa(), scratch,
                                             lane_best);
                    std::uint64_t& subj = compacted ? t.subjects_compacted
                                                    : t.subjects_interseq;
                    for (std::uint32_t l = 0; l < d.lanes_used && keep; ++l) {
                        if (((survive >> l) & 1) == 0) continue;
                        const std::uint32_t idx = member_index(d, l);
                        ++subj;
                        if ((ovf >> l) & 1) {
                            // NOLINTNEXTLINE(swh-no-alloc-in-hot-path):
                            // deferred batch, bounded by the claim size.
                            overflow.push_back(idx);
                            continue;
                        }
                        ++t.settled8;
                        keep = emit(idx, subjects_.lengths[idx],
                                    static_cast<Score>(lane_best[l]));
                    }
                } else if (path != CohortPath::kStriped) {
                    // Below the survivor cutover: running the
                    // full-width kernel would waste most of its fixed
                    // cost on pruned lanes. Batch the survivors; they
                    // are re-packed into dense cohorts at claim end.
                    for (std::uint32_t l = 0; l < d.lanes_used; ++l) {
                        if ((survive >> l) & 1) {
                            // NOLINTNEXTLINE(swh-no-alloc-in-hot-path):
                            // survivor batch; capacity is retained
                            // across flushes, growth amortizes out.
                            pending.push_back(member_index(d, l));
                        }
                    }
                } else {
                    ++t.cohorts_striped;
                    for (std::uint32_t l = 0; l < d.lanes_used && keep; ++l) {
                        if (((survive >> l) & 1) == 0) continue;
                        keep = score_striped(member_index(d, l), scratch,
                                             emit, overflow, t);
                    }
                }
            }
            // Full survivor batches become dense repacked cohorts here,
            // before the overflow drain, so their deferred lanes join
            // this claim's wide-rescore pass.
            if (keep && pending.size() >= w) {
                keep = flush_repack(pending, /*force=*/false, scratch,
                                    colstate, repack, emit, overflow, t);
            }
            // With the prefilter armed, settle this claim's deferred
            // lanes now instead of at end of run: the u8-overflowed
            // lanes ARE the likely top scorers, and the threshold can
            // only rise once their exact scores reach the caller.
            if (keep && threshold_ != nullptr && !overflow.empty()) {
                keep = drain_overflow(overflow, scratch, colstate, repack,
                                      emit, t);
            }
        }
        if (keep && !pending.empty()) {
            keep = flush_repack(pending, /*force=*/true, scratch, colstate,
                                repack, emit, overflow, t);
        }
        // Exhaustive scans arrive here with the whole run's deferred
        // batch, armed scans with at most the final flush's stragglers;
        // either way the batched drain settles it, so run_worker's
        // serial fallback only ever serves the packed claim_subjects
        // path.
        if (keep && !overflow.empty()) {
            keep = drain_overflow(overflow, scratch, colstate, repack, emit,
                                  t);
        }
        return keep;
    }

    /// Re-packs batched funnel survivors into dense scratch cohorts
    /// (column-major, pad sentinel, exactly the layout geometry) and
    /// scores them with the (tiled) inter-sequence u8 kernel. Pending
    /// survivors are first sorted length-descending and split at
    /// length cliffs with the layout compaction's greedy fill rule —
    /// claims arrive primed-first, so a straggler long survivor must
    /// never force thousands of pad columns onto a batch of short
    /// ones. Without `force`, only full-width batches run (a blocked
    /// cliff group waits for more survivors); with `force`, every
    /// group is settled — inter-sequence when its full-width fill
    /// still meets the dispatch bar, striped per subject otherwise
    /// (long isolated survivors run near striped peak anyway).
    /// Overflowed lanes join `overflow` for the wide-rescore stages.
    template <class EmitFn>
    SWH_HOT_PATH bool flush_repack(std::vector<std::uint32_t>& pending,
                                   bool force,
                      ScanScratch& scratch, InterseqColumnState& colstate,
                      std::vector<Code>& repack, EmitFn&& emit,
                      std::vector<std::uint32_t>& overflow,
                      WorkerTallies& t) {
        bool keep = true;
        const auto w = static_cast<std::size_t>(cohorts_.lanes);
        const std::size_t qlen = aligner_->interseq()->query_len;
        const bool tiled = qlen > kInterseqTileRows;
        const std::uint64_t bar = min_fill_pct(qlen);
        std::sort(pending.begin(), pending.end(),
                  [this](std::uint32_t a, std::uint32_t b) {
                      const std::uint32_t la = subjects_.lengths[a];
                      const std::uint32_t lb = subjects_.lengths[b];
                      return la != lb ? la > lb : a < b;
                  });
        std::size_t kept = 0;
        for (std::size_t at = 0; keep && at < pending.size();) {
            const std::uint64_t columns = subjects_.lengths[pending[at]];
            std::uint64_t residues = columns;
            std::size_t end = at + 1;
            while (end < pending.size() && end - at < w) {
                const std::uint64_t next =
                    residues + subjects_.lengths[pending[end]];
                if (next * 100 <
                    columns * (end - at + 1) * kInterseqMinFillPct) {
                    break;
                }
                residues = next;
                ++end;
            }
            const std::size_t count = end - at;
            if (!force && count < w) {
                // Blocked cliff group: keep it pending for later
                // survivors (order is restored by the next flush's
                // sort).
                for (std::size_t i = at; i < end; ++i) {
                    pending[kept++] = pending[i];
                }
            } else if (residues * 100 >= columns * w * bar) {
                keep = repack_batch(pending.data() + at, count, tiled,
                                    scratch, colstate, repack, emit,
                                    overflow, t);
            } else {
                for (std::size_t i = at; i < end && keep; ++i) {
                    keep = score_striped(pending[i], scratch, emit,
                                         overflow, t);
                }
            }
            at = end;
        }
        // On cancellation (keep == false) the worker is aborting: the
        // un-flushed tail is abandoned like any other unclaimed work.
        // NOLINTNEXTLINE(swh-no-alloc-in-hot-path): shrinks only.
        pending.resize(keep ? kept : 0);
        return keep;
    }

    /// One dense repacked cohort: `count` subjects (original indices)
    /// interleaved column-major into `repack` and scored together.
    template <class EmitFn>
    SWH_HOT_PATH bool repack_batch(const std::uint32_t* batch,
                                   std::size_t count,
                      bool tiled, ScanScratch& scratch,
                      InterseqColumnState& colstate, std::vector<Code>& repack,
                      EmitFn&& emit, std::vector<std::uint32_t>& overflow,
                      WorkerTallies& t) {
        const auto w = static_cast<std::size_t>(cohorts_.lanes);
        std::uint32_t columns = 0;
        for (std::size_t i = 0; i < count; ++i) {
            columns = std::max(columns, subjects_.lengths[batch[i]]);
        }
        // NOLINTNEXTLINE(swh-no-alloc-in-hot-path): repack scratch is
        // caller-retained; it grows to the largest batch once.
        repack.assign(std::size_t{columns} * w, InterseqProfile::kPadCode);
        for (std::size_t i = 0; i < count; ++i) {
            const std::span<const Code> s = subjects_.subject(batch[i]);
            for (std::size_t j = 0; j < s.size(); ++j) {
                repack[j * w + i] = s[j];
            }
        }
        ++t.repacks;
        ++t.cohorts_interseq;
        if (tiled) ++t.cohorts_tiled;
        ++t.cohorts_compacted;
        std::uint8_t lane_best[64];
        const std::uint64_t ovf =
            tiled ? sw_interseq_u8_tiled(*aligner_->interseq(), repack.data(),
                                         columns, aligner_->gap(),
                                         aligner_->isa(), scratch, colstate,
                                         lane_best)
                  : sw_interseq_u8(*aligner_->interseq(), repack.data(),
                                   columns, aligner_->gap(), aligner_->isa(),
                                   scratch, lane_best);
        bool keep = true;
        for (std::size_t i = 0; i < count && keep; ++i) {
            const std::uint32_t idx = batch[i];
            ++t.subjects_compacted;
            if ((ovf >> i) & 1) {
                // NOLINTNEXTLINE(swh-no-alloc-in-hot-path): deferred
                // batch, bounded by the repack width.
                overflow.push_back(idx);
                continue;
            }
            ++t.settled8;
            keep = emit(idx, subjects_.lengths[idx],
                        static_cast<Score>(lane_best[i]));
        }
        return keep;
    }

    /// Stage-3 drain of this worker's deferred u8-overflow batch,
    /// batched: the subjects are length-sorted, cliff-split with the
    /// same greedy fill rule as flush_repack, and every group of
    /// kEscalateBatchMin+ is settled by ONE dense i16 inter-sequence
    /// pass (escalate_batch) instead of per-subject striped rescores
    /// — a serial drain of a homolog family re-streams the wide
    /// striped profile from L2+ once per subject, and dominates long-
    /// query scans. Sub-batch remainders keep the serial path, whose
    /// fixed cost is lower. Leaves `overflow` empty.
    template <class EmitFn>
    SWH_HOT_PATH bool drain_overflow(std::vector<std::uint32_t>& overflow,
                        ScanScratch& scratch, InterseqColumnState& colstate,
                        std::vector<Code>& repack, EmitFn&& emit,
                        WorkerTallies& t) {
        bool keep = true;
        const auto w = static_cast<std::size_t>(cohorts_.lanes);
        const std::size_t qlen = aligner_->interseq()->query_len;
        const bool tiled = qlen > kInterseqTileRows;
        std::sort(overflow.begin(), overflow.end(),
                  [this](std::uint32_t a, std::uint32_t b) {
                      const std::uint32_t la = subjects_.lengths[a];
                      const std::uint32_t lb = subjects_.lengths[b];
                      return la != lb ? la > lb : a < b;
                  });
        for (std::size_t at = 0; keep && at < overflow.size();) {
            const std::uint64_t columns = subjects_.lengths[overflow[at]];
            std::uint64_t residues = columns;
            std::size_t end = at + 1;
            while (end < overflow.size() && end - at < w) {
                const std::uint64_t next =
                    residues + subjects_.lengths[overflow[end]];
                if (next * 100 <
                    columns * (end - at + 1) * kInterseqMinFillPct) {
                    break;
                }
                residues = next;
                ++end;
            }
            const std::size_t count = end - at;
            if (count >= kEscalateBatchMin) {
                keep = escalate_batch(overflow.data() + at, count, tiled,
                                      scratch, colstate, repack, emit, t);
            } else {
                for (std::size_t i = at; i < end && keep; ++i) {
                    const std::uint32_t idx = overflow[i];
                    const Score s = aligner_->rescore_wide(
                        subjects_.subject(idx), scratch, /*trusted=*/true);
                    ++t.settled_wide;
                    keep = emit(idx, subjects_.lengths[idx], s);
                }
            }
            at = end;
        }
        // On cancellation the worker is aborting anyway; clearing keeps
        // the run_worker fallback from double-settling on the keep path.
        overflow.clear();
        return keep;
    }

    /// One dense escalation cohort: `count` deferred subjects (original
    /// indices, count <= W) re-packed column-major into `repack` and
    /// settled together by the (tiled) i16 inter-sequence kernel, with
    /// the lo-half variant when the group fits half the lanes. Lanes
    /// the i16 pass itself flags as saturated go straight to the exact
    /// int32 rescore — the striped i16 attempt rescore_wide would run
    /// first is already proven futile.
    template <class EmitFn>
    SWH_HOT_PATH bool escalate_batch(const std::uint32_t* batch,
                                     std::size_t count,
                        bool tiled, ScanScratch& scratch,
                        InterseqColumnState& colstate,
                        std::vector<Code>& repack, EmitFn&& emit,
                        WorkerTallies& t) {
        const auto w = static_cast<std::size_t>(cohorts_.lanes);
        std::uint32_t columns = 0;
        for (std::size_t i = 0; i < count; ++i) {
            columns = std::max(columns, subjects_.lengths[batch[i]]);
        }
        // NOLINTNEXTLINE(swh-no-alloc-in-hot-path): repack scratch is
        // caller-retained; it grows to the largest batch once.
        repack.assign(std::size_t{columns} * w, InterseqProfile::kPadCode);
        for (std::size_t i = 0; i < count; ++i) {
            const std::span<const Code> s = subjects_.subject(batch[i]);
            for (std::size_t j = 0; j < s.size(); ++j) {
                repack[j * w + i] = s[j];
            }
        }
        ++t.escalations16;
        std::int16_t lane_best[64];
        const std::uint64_t ovf =
            tiled ? sw_interseq_i16_tiled(*aligner_->interseq(),
                                          repack.data(), columns,
                                          aligner_->gap(), aligner_->isa(),
                                          scratch, colstate, lane_best, count)
                  : sw_interseq_i16(*aligner_->interseq(), repack.data(),
                                    columns, aligner_->gap(), aligner_->isa(),
                                    scratch, lane_best, count);
        bool keep = true;
        std::uint64_t settled16 = 0;
        for (std::size_t i = 0; i < count && keep; ++i) {
            const std::uint32_t idx = batch[i];
            Score s;
            if ((ovf >> i) & 1) {
                s = aligner_->rescore_i32(subjects_.subject(idx), scratch);
            } else {
                s = static_cast<Score>(lane_best[i]);
                ++settled16;
            }
            ++t.settled_wide;
            keep = emit(idx, subjects_.lengths[idx], s);
        }
        aligner_->credit_runs16(settled16);
        return keep;
    }

    template <class EmitFn>
    SWH_HOT_PATH bool score_striped(std::uint32_t idx, ScanScratch& scratch,
                                    EmitFn&& emit,
                       std::vector<std::uint32_t>& overflow,
                       WorkerTallies& t) {
        ++t.subjects_striped;
        const StripedResult r =
            aligner_->score_u8(subjects_.subject(idx), scratch,
                               /*trusted=*/true);
        if (r.overflow) {
            // NOLINTNEXTLINE(swh-no-alloc-in-hot-path): deferred batch,
            // bounded by the claim size.
            overflow.push_back(idx);
            return true;
        }
        ++t.settled8;
        return emit(idx, subjects_.lengths[idx], r.score);
    }

    void credit_dispatch(const WorkerTallies& t);

    const StripedAligner* aligner_;
    PackedSubjects subjects_;
    std::size_t chunk_;
    InterleavedCohorts cohorts_;
    bool cohort_mode_ = false;
    /// Pruning threshold feed (null = prefilter unarmed). Owned by the
    /// caller; its value must only ever increase.
    const std::atomic<Score>* threshold_ = nullptr;
    /// Per-cohort exact-stage route, precomputed at construction from
    /// query length (untiled vs tiled) and cohort fill (vs striped).
    std::vector<CohortPath> choice_;
    /// Claim-slot -> cohort-index permutation, built only when the
    /// prefilter is armed: the kPrimeCohorts cohorts whose mean subject
    /// length is closest to the query's come first (threshold priming),
    /// the rest follow in ascending column order — shortest cohorts
    /// (cheapest, best pruning odds) first, so the filter-off guard's
    /// zero-prune streak crosses the hopeless-length boundary before
    /// the expensive cohorts are reached. Empty = identity (exhaustive
    /// scans are untouched).
    std::vector<std::uint32_t> prime_order_;
    std::atomic<std::size_t> next_{0};
    std::atomic<std::uint64_t> cohorts_interseq_{0}, cohorts_tiled_{0};
    std::atomic<std::uint64_t> cohorts_compacted_{0}, cohorts_striped_{0};
    std::atomic<std::uint64_t> repacks_{0}, escalations16_{0};
    std::atomic<std::uint64_t> subjects_interseq_{0}, subjects_compacted_{0};
    std::atomic<std::uint64_t> subjects_striped_{0};
    std::atomic<std::uint64_t> cohorts_filtered_{0}, rebounds16_{0};
    std::atomic<std::uint64_t> subjects_pruned_{0}, filter_offs_{0};
};

}  // namespace swh::align

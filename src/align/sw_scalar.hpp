#pragma once

#include <span>
#include <vector>

#include "align/score_matrix.hpp"

namespace swh::align {

/// Dense (m+1) x (n+1) dynamic-programming matrix, row-major, row 0 and
/// column 0 are the zero boundary. Kept simple for inspection in examples
/// and tests; production scoring uses the O(n)-space kernels.
struct DpMatrix {
    std::size_t rows = 0;  ///< m + 1
    std::size_t cols = 0;  ///< n + 1
    std::vector<Score> h;

    Score at(std::size_t i, std::size_t j) const { return h[i * cols + j]; }
    Score& at(std::size_t i, std::size_t j) { return h[i * cols + j]; }
};

/// Classic Smith-Waterman with the linear gap model of the paper's
/// Eq. (1): each gap residue costs `gap` (a non-negative penalty).
/// Returns the full similarity matrix (paper Fig. 2).
DpMatrix sw_matrix_linear(std::span<const Code> s, std::span<const Code> t,
                          const ScoreMatrix& matrix, Score gap);

/// Best local score under the linear gap model; O(n) space.
Score sw_score_linear(std::span<const Code> s, std::span<const Code> t,
                      const ScoreMatrix& matrix, Score gap);

/// End coordinates of a best-scoring local alignment (0-based index of
/// the last aligned residue in each sequence). score == 0 means the empty
/// alignment, in which case the coordinates are meaningless.
struct LocalEnd {
    Score score = 0;
    std::size_t s_end = 0;
    std::size_t t_end = 0;
};

/// Gotoh affine-gap Smith-Waterman (paper SS II-A.3), O(n) space. This is
/// the exact-score oracle the SIMD kernels are validated against.
Score sw_score_affine(std::span<const Code> s, std::span<const Code> t,
                      const ScoreMatrix& matrix, GapPenalty gap);

/// Same, but with caller-provided rolling rows (each at least
/// t.size() + 1 cells; contents are overwritten). Lets batched rescans
/// (align::ScanScratch) run the int32 fallback without heap allocation.
Score sw_score_affine_rows(std::span<const Code> s, std::span<const Code> t,
                           const ScoreMatrix& matrix, GapPenalty gap,
                           Score* h_row, Score* f_col);

/// Same, but also reports where the best alignment ends. Ties break
/// toward the smallest (s_end, t_end) in lexicographic order, matching
/// the traceback implementation.
LocalEnd sw_end_affine(std::span<const Code> s, std::span<const Code> t,
                       const ScoreMatrix& matrix, GapPenalty gap);

}  // namespace swh::align

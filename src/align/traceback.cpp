#include "align/traceback.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "util/error.hpp"

namespace swh::align {

namespace {

// Large negative sentinel that survives a few additions without wrapping.
constexpr Score kNegInf = std::numeric_limits<Score>::min() / 4;

// Direction-byte layout shared by the affine aligners:
//   bits 0..1: H source — 0 stop/boundary, 1 diagonal, 2 E (insert),
//              3 F (delete)
//   bit 2:     E(i,j) extends E(i,j-1) (otherwise opens from H(i,j-1))
//   bit 3:     F(i,j) extends F(i-1,j) (otherwise opens from H(i-1,j))
constexpr std::uint8_t kHStop = 0;
constexpr std::uint8_t kHDiag = 1;
constexpr std::uint8_t kHFromE = 2;
constexpr std::uint8_t kHFromF = 3;
constexpr std::uint8_t kEExt = 1u << 2;
constexpr std::uint8_t kFExt = 1u << 3;

struct AffineDp {
    std::size_t cols = 0;  // |t| + 1
    std::vector<Score> h, e, f;
    std::vector<std::uint8_t> dir;

    Score& H(std::size_t i, std::size_t j) { return h[i * cols + j]; }
    Score& E(std::size_t i, std::size_t j) { return e[i * cols + j]; }
    Score& F(std::size_t i, std::size_t j) { return f[i * cols + j]; }
    std::uint8_t& D(std::size_t i, std::size_t j) { return dir[i * cols + j]; }
};

// Fills the affine DP tables. `global` selects NW boundaries and drops
// the zero clamp.
AffineDp fill_affine(std::span<const Code> s, std::span<const Code> t,
                     const ScoreMatrix& matrix, GapPenalty gap, bool global) {
    SWH_REQUIRE(gap.open >= 0 && gap.extend >= 0,
                "gap penalties must be non-negative");
    AffineDp dp;
    const std::size_t m = s.size(), n = t.size();
    dp.cols = n + 1;
    const std::size_t cells = (m + 1) * (n + 1);
    dp.h.assign(cells, 0);
    dp.e.assign(cells, kNegInf);
    dp.f.assign(cells, kNegInf);
    dp.dir.assign(cells, kHStop);

    if (global) {
        for (std::size_t j = 1; j <= n; ++j) {
            dp.H(0, j) = -gap.cost(static_cast<Score>(j));
            dp.E(0, j) = dp.H(0, j);
            dp.D(0, j) = kHFromE | (j > 1 ? kEExt : 0);
        }
        for (std::size_t i = 1; i <= m; ++i) {
            dp.H(i, 0) = -gap.cost(static_cast<Score>(i));
            dp.F(i, 0) = dp.H(i, 0);
            dp.D(i, 0) = kHFromF | (i > 1 ? kFExt : 0);
        }
    }

    for (std::size_t i = 1; i <= m; ++i) {
        for (std::size_t j = 1; j <= n; ++j) {
            std::uint8_t d = 0;

            const Score e_ext = dp.E(i, j - 1) - gap.extend;
            const Score e_open = dp.H(i, j - 1) - gap.open - gap.extend;
            if (e_ext >= e_open) d |= kEExt;
            dp.E(i, j) = std::max(e_ext, e_open);

            const Score f_ext = dp.F(i - 1, j) - gap.extend;
            const Score f_open = dp.H(i - 1, j) - gap.open - gap.extend;
            if (f_ext >= f_open) d |= kFExt;
            dp.F(i, j) = std::max(f_ext, f_open);

            const Score diag =
                dp.H(i - 1, j - 1) + matrix.at(s[i - 1], t[j - 1]);
            Score best = diag;
            std::uint8_t src = kHDiag;
            if (dp.E(i, j) > best) {
                best = dp.E(i, j);
                src = kHFromE;
            }
            if (dp.F(i, j) > best) {
                best = dp.F(i, j);
                src = kHFromF;
            }
            if (!global && best <= 0) {
                best = 0;
                src = kHStop;
            }
            dp.H(i, j) = best;
            dp.D(i, j) = d | src;
        }
    }
    return dp;
}

// Walks the direction matrix back from (i, j) in the H state, emitting
// ops in reverse. Stops at a kHStop cell (local) or at (0,0) (global).
Alignment trace_affine(AffineDp& dp, std::size_t i, std::size_t j,
                       Score score) {
    Alignment out;
    out.score = score;
    out.s_end = i;
    out.t_end = j;
    enum class St { H, E, F } st = St::H;
    while (i > 0 || j > 0) {
        const std::uint8_t d = dp.D(i, j);
        if (st == St::H) {
            const std::uint8_t src = d & 0x3;
            if (src == kHStop) break;
            if (src == kHDiag) {
                out.ops.push_back(AlignOp::Match);
                --i;
                --j;
            } else if (src == kHFromE) {
                st = St::E;
            } else {
                st = St::F;
            }
        } else if (st == St::E) {
            out.ops.push_back(AlignOp::Insert);
            const bool ext = (d & kEExt) != 0;
            --j;
            if (!ext) st = St::H;
        } else {  // St::F
            out.ops.push_back(AlignOp::Delete);
            const bool ext = (d & kFExt) != 0;
            --i;
            if (!ext) st = St::H;
        }
    }
    out.s_begin = i;
    out.t_begin = j;
    std::reverse(out.ops.begin(), out.ops.end());
    return out;
}

}  // namespace

Alignment sw_align_linear(std::span<const Code> s, std::span<const Code> t,
                          const ScoreMatrix& matrix, Score gap) {
    SWH_REQUIRE(gap >= 0, "gap penalty must be non-negative");
    const std::size_t m = s.size(), n = t.size();
    const std::size_t cols = n + 1;
    std::vector<Score> h((m + 1) * cols, 0);
    // 0 stop, 1 diag, 2 left (insert), 3 up (delete)
    std::vector<std::uint8_t> dir((m + 1) * cols, 0);

    Score best = 0;
    std::size_t bi = 0, bj = 0;
    for (std::size_t i = 1; i <= m; ++i) {
        for (std::size_t j = 1; j <= n; ++j) {
            const Score diag =
                h[(i - 1) * cols + j - 1] + matrix.at(s[i - 1], t[j - 1]);
            const Score up = h[(i - 1) * cols + j] - gap;
            const Score left = h[i * cols + j - 1] - gap;
            Score v = diag;
            std::uint8_t d = 1;
            if (left > v) {
                v = left;
                d = 2;
            }
            if (up > v) {
                v = up;
                d = 3;
            }
            if (v <= 0) {
                v = 0;
                d = 0;
            }
            h[i * cols + j] = v;
            dir[i * cols + j] = d;
            if (v > best) {
                best = v;
                bi = i;
                bj = j;
            }
        }
    }

    Alignment out;
    out.score = best;
    out.s_end = bi;
    out.t_end = bj;
    std::size_t i = bi, j = bj;
    while (dir[i * cols + j] != 0) {
        switch (dir[i * cols + j]) {
            case 1:
                out.ops.push_back(AlignOp::Match);
                --i;
                --j;
                break;
            case 2:
                out.ops.push_back(AlignOp::Insert);
                --j;
                break;
            default:
                out.ops.push_back(AlignOp::Delete);
                --i;
                break;
        }
    }
    out.s_begin = i;
    out.t_begin = j;
    std::reverse(out.ops.begin(), out.ops.end());
    return out;
}

Alignment sw_align_affine(std::span<const Code> s, std::span<const Code> t,
                          const ScoreMatrix& matrix, GapPenalty gap) {
    AffineDp dp = fill_affine(s, t, matrix, gap, /*global=*/false);
    Score best = 0;
    std::size_t bi = 0, bj = 0;
    for (std::size_t i = 1; i <= s.size(); ++i) {
        for (std::size_t j = 1; j <= t.size(); ++j) {
            if (dp.H(i, j) > best) {
                best = dp.H(i, j);
                bi = i;
                bj = j;
            }
        }
    }
    if (best == 0) return Alignment{};  // empty alignment
    return trace_affine(dp, bi, bj, best);
}

Alignment nw_align_linear(std::span<const Code> s, std::span<const Code> t,
                          const ScoreMatrix& matrix, Score gap) {
    SWH_REQUIRE(gap >= 0, "gap penalty must be non-negative");
    const std::size_t m = s.size(), n = t.size();
    const std::size_t cols = n + 1;
    std::vector<Score> h((m + 1) * cols, 0);
    std::vector<std::uint8_t> dir((m + 1) * cols, 0);  // 1 diag 2 left 3 up
    for (std::size_t j = 1; j <= n; ++j) {
        h[j] = -gap * static_cast<Score>(j);
        dir[j] = 2;
    }
    for (std::size_t i = 1; i <= m; ++i) {
        h[i * cols] = -gap * static_cast<Score>(i);
        dir[i * cols] = 3;
    }
    for (std::size_t i = 1; i <= m; ++i) {
        for (std::size_t j = 1; j <= n; ++j) {
            const Score diag =
                h[(i - 1) * cols + j - 1] + matrix.at(s[i - 1], t[j - 1]);
            const Score up = h[(i - 1) * cols + j] - gap;
            const Score left = h[i * cols + j - 1] - gap;
            Score v = diag;
            std::uint8_t d = 1;
            if (left > v) {
                v = left;
                d = 2;
            }
            if (up > v) {
                v = up;
                d = 3;
            }
            h[i * cols + j] = v;
            dir[i * cols + j] = d;
        }
    }

    Alignment out;
    out.score = h[m * cols + n];
    out.s_end = m;
    out.t_end = n;
    std::size_t i = m, j = n;
    while (i > 0 || j > 0) {
        switch (dir[i * cols + j]) {
            case 1:
                out.ops.push_back(AlignOp::Match);
                --i;
                --j;
                break;
            case 2:
                out.ops.push_back(AlignOp::Insert);
                --j;
                break;
            default:
                out.ops.push_back(AlignOp::Delete);
                --i;
                break;
        }
    }
    std::reverse(out.ops.begin(), out.ops.end());
    return out;
}

Alignment nw_align_affine(std::span<const Code> s, std::span<const Code> t,
                          const ScoreMatrix& matrix, GapPenalty gap) {
    AffineDp dp = fill_affine(s, t, matrix, gap, /*global=*/true);
    const std::size_t m = s.size(), n = t.size();
    Alignment out = trace_affine(dp, m, n, dp.H(m, n));
    // A global alignment must consume both sequences fully; trace_affine
    // stops at (0,0) because no kHStop cells exist on the NW paths.
    SWH_REQUIRE(out.s_begin == 0 && out.t_begin == 0,
                "global traceback did not reach the origin");
    return out;
}

}  // namespace swh::align

#pragma once

// Templated bodies of the gap-slack prefilter kernels: one subject per
// SIMD lane, two DP rows indexed by query position (the H row and the
// rows-above prefix maximum), no E/F recurrences — just the diagonal
// chain with a row-monotone restart charge (see align/ungapped.hpp).
// Instantiated per SIMD backend in ungapped.cpp; exposed in a header so
// tests can pin a specific backend.
//
// The arithmetic idiom matches the full inter-sequence kernels
// (interseq_kernels.hpp): scores come biased from the shared transposed
// profile, `subs(adds(H, s+bias), bias)` computes max(0, H + s) exactly
// in saturating unsigned arithmetic, and the overflow masks use the
// same conservative saturation bounds as the striped kernels — if any
// add clipped, the running maximum itself sits at the clip point, so
// the final check cannot miss it. The u8 restart `subs(above, vOpen)`
// clamps a negative charge at 0; that only ever substitutes the always-
// legal fresh start (H is clamped at 0 anyway), so the u8, i16 and
// scalar forms all compute the identical function absent saturation.

#include <algorithm>
#include <cstring>

#include "align/interseq.hpp"
#include "align/striped.hpp"
#include "align/ungapped.hpp"
#include "util/annotations.hpp"

namespace swh::align::detail {

/// 8-bit gap-slack kernel. V must model the u8 vector interface of
/// simd/vec_scalar.hpp including lookup32. Returns the overflow lane
/// mask; lane_best[0..V::kLanes) receives per-lane chain bounds.
template <class V>
SWH_HOT_PATH std::uint64_t ungapped_interseq_u8(const InterseqProfile& p, const Code* cols,
                                   std::size_t columns, GapPenalty gap,
                                   ScanScratch& scratch,
                                   std::uint8_t* lane_best,
                                   std::size_t row_begin, std::size_t row_end) {
    constexpr int W = V::kLanes;
    std::memset(lane_best, 0, W);
    const std::size_t lo = std::min(row_begin, p.query_len);
    const std::size_t hi = std::min(row_end, p.query_len);
    if (lo >= hi || columns == 0) return 0;
    const std::size_t m = hi - lo;

    const V vBias = V::splat(static_cast<std::uint8_t>(p.bias));
    // An open penalty > 255 saturates the splat; the saturating subtract
    // below then clamps the restart at 0, which only weakens (never
    // breaks) the bound.
    const V vOpen = V::splat(
        static_cast<std::uint8_t>(std::min<Score>(gap.open, 255)));
    const std::size_t bytes = m * sizeof(V);
    const ScanScratch::KernelBuffers bufs = scratch.kernel_buffers(bytes);
    V* __restrict h = static_cast<V*>(bufs.h_load);
    // above[i] = max T over rows < i of all columns processed so far
    // (A(i, j) in ungapped.hpp) — the only legal restart sources for
    // row i.
    V* __restrict above = static_cast<V*>(bufs.e);
    std::memset(h, 0, bytes);
    std::memset(above, 0, bytes);
    V vMax = V::zero();

    for (std::size_t j = 0; j < columns; ++j) {
        const V dbv = V::load(cols + j * static_cast<std::size_t>(W));
        V vDiag = V::zero();    // H(i-1, j-1); 0 boundary for i = 0
        V vPrefix = V::zero();  // max H over rows < i of THIS column
        for (std::size_t i = 0; i < m; ++i) {
            const V vAbove = above[i];
            // Restart from the best chain value strictly above this
            // row in any earlier column, charged one gap open. vAbove
            // still excludes this column's rows — same-column cells
            // cannot feed each other.
            const V vIn = vmax(vDiag, subs(vAbove, vOpen));
            const V vH =
                subs(adds(vIn, lookup32(p.row(lo + i), dbv)), vBias);
            vDiag = h[i];  // this row's H of the previous column
            h[i] = vH;
            above[i] = vmax(vAbove, vPrefix);
            vPrefix = vmax(vPrefix, vH);
        }
        vMax = vmax(vMax, vPrefix);
    }

    vMax.store(lane_best);
    std::uint64_t overflow = 0;
    for (int l = 0; l < W; ++l) {
        if (static_cast<Score>(lane_best[l]) + p.bias >= 255) {
            overflow |= std::uint64_t{1} << l;
        }
    }
    return overflow;
}

/// 16-bit gap-slack kernel over the same u8-width cohort: each DP row
/// holds two i16 half-vectors, widened in lane order (the layout of
/// interseq_i16).
template <class V>
SWH_HOT_PATH std::uint64_t ungapped_interseq_i16(const InterseqProfile& p, const Code* cols,
                                    std::size_t columns, GapPenalty gap,
                                    ScanScratch& scratch,
                                    std::int16_t* lane_best,
                                    std::size_t row_begin,
                                    std::size_t row_end) {
    constexpr int W = V::kLanes;
    using VW = decltype(widen_lo(V::zero()));
    for (int l = 0; l < W; ++l) lane_best[l] = 0;
    const std::size_t lo = std::min(row_begin, p.query_len);
    const std::size_t hi = std::min(row_end, p.query_len);
    if (lo >= hi || columns == 0) return 0;
    const std::size_t m = hi - lo;

    const VW vBias = VW::splat(static_cast<std::int16_t>(p.bias));
    const VW vZero = VW::zero();
    const VW vOpen = VW::splat(
        static_cast<std::int16_t>(std::min<Score>(gap.open, 32767)));
    const std::size_t bytes = 2 * m * sizeof(VW);
    const ScanScratch::KernelBuffers bufs = scratch.kernel_buffers(bytes);
    VW* __restrict h = static_cast<VW*>(bufs.h_load);
    VW* __restrict above = static_cast<VW*>(bufs.e);
    std::memset(h, 0, bytes);
    std::memset(above, 0, bytes);
    VW vMaxLo = VW::zero();
    VW vMaxHi = VW::zero();

    for (std::size_t j = 0; j < columns; ++j) {
        const V dbv = V::load(cols + j * static_cast<std::size_t>(W));
        VW vDiagLo = VW::zero();
        VW vDiagHi = VW::zero();
        VW vPrefixLo = VW::zero();
        VW vPrefixHi = VW::zero();
        for (std::size_t i = 0; i < m; ++i) {
            const V s8 = lookup32(p.row(lo + i), dbv);
            // Exact un-bias: widened entries are in [0, 255], so the
            // subtraction cannot saturate and yields the raw score.
            const VW sLo = subs(widen_lo(s8), vBias);
            const VW sHi = subs(widen_hi(s8), vBias);

            VW vAbove = above[2 * i];
            VW vH = vmax(
                adds(vmax(vDiagLo, subs(vAbove, vOpen)), sLo), vZero);
            vDiagLo = h[2 * i];
            h[2 * i] = vH;
            above[2 * i] = vmax(vAbove, vPrefixLo);
            vPrefixLo = vmax(vPrefixLo, vH);

            vAbove = above[2 * i + 1];
            vH = vmax(adds(vmax(vDiagHi, subs(vAbove, vOpen)), sHi), vZero);
            vDiagHi = h[2 * i + 1];
            h[2 * i + 1] = vH;
            above[2 * i + 1] = vmax(vAbove, vPrefixHi);
            vPrefixHi = vmax(vPrefixHi, vH);
        }
        vMaxLo = vmax(vMaxLo, vPrefixLo);
        vMaxHi = vmax(vMaxHi, vPrefixHi);
    }

    vMaxLo.store(lane_best);
    vMaxHi.store(lane_best + W / 2);
    std::uint64_t overflow = 0;
    for (int l = 0; l < W; ++l) {
        if (static_cast<Score>(lane_best[l]) + p.max_raw >= 32767) {
            overflow |= std::uint64_t{1} << l;
        }
    }
    return overflow;
}

}  // namespace swh::align::detail

#include "align/ungapped.hpp"

#include <algorithm>
#include <vector>

#include "align/ungapped_kernels.hpp"
#include "simd/simd.hpp"
#include "util/error.hpp"

namespace swh::align {

Score sw_ungapped_scalar(std::span<const Code> a, std::span<const Code> b,
                         const ScoreMatrix& matrix, GapPenalty gap) {
    Score best = 0;
    if (a.empty() || b.empty()) return best;
    // Two rolling rows over a, swept once per residue of b (matching
    // the kernels' column order): `row` carries the previous column's
    // T, `above[i]` the best T over rows < i of all columns processed
    // so far (A(i, j) in ungapped.hpp) — the only legal restart sources
    // for row i.
    std::vector<Score> row(a.size(), 0);
    std::vector<Score> above(a.size(), 0);
    for (const Code cb : b) {
        Score diag = 0;    // T(i-1, j-1), 0 boundary at i = 0
        Score prefix = 0;  // max T over rows < i of THIS column
        for (std::size_t i = 0; i < a.size(); ++i) {
            const Score aOld = above[i];
            const Score h = std::max<Score>(
                0, std::max(diag, aOld - gap.open) + matrix.at(a[i], cb));
            diag = row[i];
            row[i] = h;
            above[i] = std::max(aOld, prefix);
            prefix = std::max(prefix, h);
            best = std::max(best, h);
        }
    }
    return best;
}

std::uint64_t sw_ungapped_interseq_u8(const InterseqProfile& profile,
                                      const Code* cols, std::size_t columns,
                                      GapPenalty gap, simd::IsaLevel isa,
                                      ScanScratch& scratch,
                                      std::uint8_t* lane_best,
                                      std::size_t row_begin,
                                      std::size_t row_end) {
    switch (isa) {
        case simd::IsaLevel::Scalar:
            return detail::ungapped_interseq_u8<simd::U8x16s>(
                profile, cols, columns, gap, scratch, lane_best, row_begin,
                row_end);
#if defined(__SSE2__)
        case simd::IsaLevel::SSE2:
            return detail::ungapped_interseq_u8<simd::U8x16>(
                profile, cols, columns, gap, scratch, lane_best, row_begin,
                row_end);
#endif
#if defined(__AVX2__)
        case simd::IsaLevel::AVX2:
            return detail::ungapped_interseq_u8<simd::U8x32>(
                profile, cols, columns, gap, scratch, lane_best, row_begin,
                row_end);
#endif
#if defined(__AVX512BW__)
        case simd::IsaLevel::AVX512:
            return detail::ungapped_interseq_u8<simd::U8x64>(
                profile, cols, columns, gap, scratch, lane_best, row_begin,
                row_end);
#endif
        default:
            break;
    }
    SWH_REQUIRE(false, "ISA level not compiled in");
    return 0;
}

std::uint64_t sw_ungapped_interseq_i16(const InterseqProfile& profile,
                                       const Code* cols, std::size_t columns,
                                       GapPenalty gap, simd::IsaLevel isa,
                                       ScanScratch& scratch,
                                       std::int16_t* lane_best,
                                       std::size_t row_begin,
                                       std::size_t row_end) {
    switch (isa) {
        case simd::IsaLevel::Scalar:
            return detail::ungapped_interseq_i16<simd::U8x16s>(
                profile, cols, columns, gap, scratch, lane_best, row_begin,
                row_end);
#if defined(__SSE2__)
        case simd::IsaLevel::SSE2:
            return detail::ungapped_interseq_i16<simd::U8x16>(
                profile, cols, columns, gap, scratch, lane_best, row_begin,
                row_end);
#endif
#if defined(__AVX2__)
        case simd::IsaLevel::AVX2:
            return detail::ungapped_interseq_i16<simd::U8x32>(
                profile, cols, columns, gap, scratch, lane_best, row_begin,
                row_end);
#endif
#if defined(__AVX512BW__)
        case simd::IsaLevel::AVX512:
            return detail::ungapped_interseq_i16<simd::U8x64>(
                profile, cols, columns, gap, scratch, lane_best, row_begin,
                row_end);
#endif
        default:
            break;
    }
    SWH_REQUIRE(false, "ISA level not compiled in");
    return 0;
}

std::uint64_t lanes_at_least(const std::uint8_t* lane_best, std::uint8_t floor,
                             simd::IsaLevel isa) {
    switch (isa) {
        case simd::IsaLevel::Scalar:
            return ge_mask(simd::U8x16s::load(lane_best),
                           simd::U8x16s::splat(floor));
#if defined(__SSE2__)
        case simd::IsaLevel::SSE2:
            return ge_mask(simd::U8x16::load(lane_best),
                           simd::U8x16::splat(floor));
#endif
#if defined(__AVX2__)
        case simd::IsaLevel::AVX2:
            return ge_mask(simd::U8x32::load(lane_best),
                           simd::U8x32::splat(floor));
#endif
#if defined(__AVX512BW__)
        case simd::IsaLevel::AVX512:
            return ge_mask(simd::U8x64::load(lane_best),
                           simd::U8x64::splat(floor));
#endif
        default:
            break;
    }
    SWH_REQUIRE(false, "ISA level not compiled in");
    return 0;
}

}  // namespace swh::align

#pragma once

#include <span>

#include "align/alignment.hpp"

namespace swh::align {

/// Result of a suffix-prefix (dovetail) overlap alignment: a suffix of
/// `a` aligned against a prefix of `b`.
struct Overlap {
    Score score = 0;
    std::size_t a_begin = 0;  ///< overlap starts at a[a_begin..)
    std::size_t b_end = 0;    ///< ...and covers b[0, b_end)

    std::size_t a_len(std::size_t a_size) const { return a_size - a_begin; }
};

/// Semi-global overlap alignment (the assembly primitive): leading
/// residues of `a` and trailing residues of `b` are free; the aligned
/// region must reach a's end and start at b's beginning. Gaps inside the
/// overlap are affine. Returns the best-scoring overlap; score can be
/// <= 0 when the sequences do not dovetail (b_end == 0 means "no
/// overlap beats the empty one").
Overlap overlap_align(std::span<const Code> a, std::span<const Code> b,
                      const ScoreMatrix& matrix, GapPenalty gap);

/// Overlap plus the explicit column ops of the overlapped region
/// (Delete = residue of a, Insert = residue of b), for consensus
/// building.
struct OverlapAlignment {
    Overlap overlap;
    std::vector<AlignOp> ops;
};

OverlapAlignment overlap_align_ops(std::span<const Code> a,
                                   std::span<const Code> b,
                                   const ScoreMatrix& matrix,
                                   GapPenalty gap);

}  // namespace swh::align

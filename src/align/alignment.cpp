#include "align/alignment.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace swh::align {

char to_char(AlignOp op) {
    switch (op) {
        case AlignOp::Match:
            return 'M';
        case AlignOp::Delete:
            return 'D';
        case AlignOp::Insert:
            return 'I';
    }
    return '?';
}

std::string Alignment::cigar() const {
    std::ostringstream os;
    std::size_t i = 0;
    while (i < ops.size()) {
        std::size_t j = i;
        while (j < ops.size() && ops[j] == ops[i]) ++j;
        os << (j - i) << to_char(ops[i]);
        i = j;
    }
    return os.str();
}

namespace {

struct Consumed {
    std::size_t s = 0;
    std::size_t t = 0;
};

Consumed consumed_by(const std::vector<AlignOp>& ops) {
    Consumed c;
    for (AlignOp op : ops) {
        if (op != AlignOp::Insert) ++c.s;
        if (op != AlignOp::Delete) ++c.t;
    }
    return c;
}

void validate_extents(const Alignment& a, std::size_t s_size,
                      std::size_t t_size) {
    SWH_REQUIRE(a.s_begin <= a.s_end && a.s_end <= s_size,
                "alignment s-range out of bounds");
    SWH_REQUIRE(a.t_begin <= a.t_end && a.t_end <= t_size,
                "alignment t-range out of bounds");
    const Consumed c = consumed_by(a.ops);
    SWH_REQUIRE(c.s == a.s_end - a.s_begin,
                "alignment ops do not consume the stated s-range");
    SWH_REQUIRE(c.t == a.t_end - a.t_begin,
                "alignment ops do not consume the stated t-range");
}

}  // namespace

Score score_alignment_affine(const Alignment& a, std::span<const Code> s,
                             std::span<const Code> t,
                             const ScoreMatrix& matrix, GapPenalty gap) {
    validate_extents(a, s.size(), t.size());
    Score score = 0;
    std::size_t si = a.s_begin, tj = a.t_begin;
    AlignOp prev = AlignOp::Match;
    bool first = true;
    for (AlignOp op : a.ops) {
        switch (op) {
            case AlignOp::Match:
                score += matrix.at(s[si++], t[tj++]);
                break;
            case AlignOp::Delete:
                score -= gap.extend;
                if (first || prev != AlignOp::Delete) score -= gap.open;
                ++si;
                break;
            case AlignOp::Insert:
                score -= gap.extend;
                if (first || prev != AlignOp::Insert) score -= gap.open;
                ++tj;
                break;
        }
        prev = op;
        first = false;
    }
    return score;
}

Score score_alignment_linear(const Alignment& a, std::span<const Code> s,
                             std::span<const Code> t,
                             const ScoreMatrix& matrix, Score gap) {
    validate_extents(a, s.size(), t.size());
    Score score = 0;
    std::size_t si = a.s_begin, tj = a.t_begin;
    for (AlignOp op : a.ops) {
        switch (op) {
            case AlignOp::Match:
                score += matrix.at(s[si++], t[tj++]);
                break;
            case AlignOp::Delete:
                score -= gap;
                ++si;
                break;
            case AlignOp::Insert:
                score -= gap;
                ++tj;
                break;
        }
    }
    return score;
}

std::string format_alignment(const Alignment& a, const Alphabet& alphabet,
                             std::span<const Code> s, std::span<const Code> t,
                             std::size_t line_width) {
    validate_extents(a, s.size(), t.size());
    SWH_REQUIRE(line_width > 0, "line width must be positive");
    std::string top, mid, bot;
    std::size_t si = a.s_begin, tj = a.t_begin;
    for (AlignOp op : a.ops) {
        switch (op) {
            case AlignOp::Match: {
                const Code cs = s[si++], ct = t[tj++];
                top.push_back(alphabet.decode(cs));
                mid.push_back(cs == ct ? '|' : ' ');
                bot.push_back(alphabet.decode(ct));
                break;
            }
            case AlignOp::Delete:
                top.push_back(alphabet.decode(s[si++]));
                mid.push_back(' ');
                bot.push_back('-');
                break;
            case AlignOp::Insert:
                top.push_back('-');
                mid.push_back(' ');
                bot.push_back(alphabet.decode(t[tj++]));
                break;
        }
    }
    std::ostringstream os;
    for (std::size_t off = 0; off < top.size(); off += line_width) {
        const std::size_t n = std::min(line_width, top.size() - off);
        os << top.substr(off, n) << '\n'
           << mid.substr(off, n) << '\n'
           << bot.substr(off, n) << '\n';
        if (off + n < top.size()) os << '\n';
    }
    return os.str();
}

}  // namespace swh::align

#include "align/banded.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "util/error.hpp"

namespace swh::align {

namespace {
constexpr Score kNegInf = std::numeric_limits<Score>::min() / 4;
}

std::size_t full_band_width(std::size_t s_len, std::size_t t_len) {
    return s_len + t_len;
}

Score sw_score_banded(std::span<const Code> s, std::span<const Code> t,
                      const ScoreMatrix& matrix, GapPenalty gap,
                      std::ptrdiff_t diag_shift, std::size_t band_width) {
    SWH_REQUIRE(gap.open >= 0 && gap.extend >= 0,
                "gap penalties must be non-negative");
    if (s.empty() || t.empty()) return 0;

    const auto n = static_cast<std::ptrdiff_t>(t.size());
    const auto w = static_cast<std::ptrdiff_t>(band_width);

    // h_row[j] = H(i-1, j); f_col[j] = F(i-1, j); j is 1-based with slot
    // 0 as the zero boundary column. Only cells inside the previous
    // row's band [prev_lo, prev_hi] (plus column 0) are meaningful;
    // everything else counts as unreachable (kNegInf). Alignments are
    // thereby confined to the band; the local-alignment zero floor still
    // lets them start anywhere inside it.
    std::vector<Score> h_row(t.size() + 1, 0);  // row 0: all zeros, valid
    std::vector<Score> f_col(t.size() + 1, kNegInf);
    std::ptrdiff_t prev_lo = 0, prev_hi = n;

    Score best = 0;
    for (std::size_t i = 1; i <= s.size(); ++i) {
        const std::ptrdiff_t centre =
            static_cast<std::ptrdiff_t>(i) + diag_shift;
        const std::ptrdiff_t lo = std::max<std::ptrdiff_t>(1, centre - w);
        const std::ptrdiff_t hi = std::min<std::ptrdiff_t>(n, centre + w);
        if (lo > hi) {  // band left the matrix on this row
            prev_lo = 1;
            prev_hi = 0;
            continue;
        }
        const auto in_prev = [&](std::ptrdiff_t j) {
            return j == 0 || (j >= prev_lo && j <= prev_hi);
        };

        Score e = kNegInf;  // E(i, j), horizontal gap within this row
        Score h_diag = in_prev(lo - 1) ? h_row[static_cast<std::size_t>(
                                             lo - 1)]
                                       : kNegInf;
        for (std::ptrdiff_t j = lo; j <= hi; ++j) {
            const auto ju = static_cast<std::size_t>(j);
            const Score h_left =
                j > lo ? h_row[ju - 1] : (lo - 1 == 0 ? Score{0} : kNegInf);
            e = std::max(e, h_left - gap.open) - gap.extend;

            const Score h_up = in_prev(j) ? h_row[ju] : kNegInf;
            const Score f_prev = in_prev(j) ? f_col[ju] : kNegInf;
            const Score f = std::max(f_prev, h_up - gap.open) - gap.extend;
            f_col[ju] = f;

            const Score diag =
                h_diag > kNegInf / 2
                    ? h_diag + matrix.at(s[i - 1], t[ju - 1])
                    : kNegInf;
            const Score h = std::max({diag, e, f, Score{0}});
            h_diag = h_up;  // H(i-1, j) is the diagonal for column j+1
            h_row[ju] = h;
            best = std::max(best, h);
        }
        prev_lo = lo;
        prev_hi = hi;
    }
    return best;
}

}  // namespace swh::align

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "align/score_matrix.hpp"
#include "align/sequence.hpp"

namespace swh::align {

/// One column of an alignment.
enum class AlignOp : std::uint8_t {
    Match,   ///< s[i] aligned to t[j] (match or mismatch)
    Delete,  ///< s[i] aligned to a gap in t (vertical move)
    Insert,  ///< gap in s aligned to t[j] (horizontal move)
};

char to_char(AlignOp op);  ///< 'M' / 'D' / 'I'

/// A pairwise alignment between a region of s and a region of t.
/// Regions are half-open: s[s_begin, s_end) aligns to t[t_begin, t_end).
/// For global alignments the regions cover both sequences entirely.
struct Alignment {
    Score score = 0;
    std::size_t s_begin = 0, s_end = 0;
    std::size_t t_begin = 0, t_end = 0;
    std::vector<AlignOp> ops;

    std::size_t length() const { return ops.size(); }

    /// Compact CIGAR-style run-length encoding, e.g. "12M1D4M".
    std::string cigar() const;
};

/// Re-scores an alignment under the affine model; also validates that the
/// ops consume exactly the [begin, end) ranges. Used by property tests to
/// check traceback output against the DP score.
Score score_alignment_affine(const Alignment& a, std::span<const Code> s,
                             std::span<const Code> t,
                             const ScoreMatrix& matrix, GapPenalty gap);

/// Re-scores under the linear gap model (paper Eq. 1 / Fig. 1).
Score score_alignment_linear(const Alignment& a, std::span<const Code> s,
                             std::span<const Code> t,
                             const ScoreMatrix& matrix, Score gap);

/// Renders the three-line view the paper's Fig. 1 shows:
///   A C T T G T C C
///   | |   | | |   |
///   A C - T G T C A
/// Match columns get '|', mismatches ' ', gaps '-' in the gapped row.
std::string format_alignment(const Alignment& a, const Alphabet& alphabet,
                             std::span<const Code> s, std::span<const Code> t,
                             std::size_t line_width = 60);

}  // namespace swh::align

#include "align/score_matrix.hpp"

#include <algorithm>
#include <istream>
#include <limits>
#include <sstream>

#include "util/error.hpp"
#include "util/str.hpp"

namespace swh::align {

ScoreMatrix::ScoreMatrix(const Alphabet& alphabet, std::string name)
    : alphabet_(&alphabet),
      name_(std::move(name)),
      k_(alphabet.size()),
      data_(k_ * k_, 0) {}

void ScoreMatrix::set(Code a, Code b, Score v) {
    SWH_REQUIRE(a < k_ && b < k_, "matrix index out of alphabet range");
    SWH_REQUIRE(v >= std::numeric_limits<std::int8_t>::min() &&
                    v <= std::numeric_limits<std::int8_t>::max(),
                "matrix entries must fit int8 for the 8-bit kernel");
    data_[static_cast<std::size_t>(a) * k_ + b] = v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
}

void ScoreMatrix::recompute_extrema() {
    min_ = max_ = data_.empty() ? 0 : data_[0];
    for (Score v : data_) {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
}

bool ScoreMatrix::is_symmetric() const {
    for (std::size_t a = 0; a < k_; ++a)
        for (std::size_t b = a + 1; b < k_; ++b)
            if (data_[a * k_ + b] != data_[b * k_ + a]) return false;
    return true;
}

ScoreMatrix ScoreMatrix::match_mismatch(const Alphabet& alphabet, Score match,
                                        Score mismatch, Score wildcard_score) {
    ScoreMatrix m(alphabet, "match_mismatch");
    const Code wc = alphabet.wildcard();
    for (Code a = 0; a < alphabet.size(); ++a) {
        for (Code b = 0; b < alphabet.size(); ++b) {
            Score v = (a == b) ? match : mismatch;
            if (a == wc || b == wc) v = wildcard_score;
            m.set(a, b, v);
        }
    }
    return m;
}

ScoreMatrix ScoreMatrix::from_ncbi_stream(const Alphabet& alphabet,
                                          std::istream& in,
                                          std::string name) {
    ScoreMatrix m(alphabet, std::move(name));
    std::vector<Code> cols;
    std::string line;
    bool have_header = false;
    while (std::getline(in, line)) {
        const std::string_view t = trim(line);
        if (t.empty() || t.front() == '#') continue;
        const std::vector<std::string> fields = split_ws(t);
        if (!have_header) {
            for (const std::string& f : fields) {
                SWH_REQUIRE(f.size() == 1, "matrix header entries are chars");
                SWH_REQUIRE(alphabet.contains(f[0]),
                            "matrix header symbol not in alphabet");
                cols.push_back(alphabet.encode(f[0]));
            }
            have_header = true;
            continue;
        }
        SWH_REQUIRE(fields.size() == cols.size() + 1,
                    "matrix row has wrong field count");
        SWH_REQUIRE(fields[0].size() == 1, "matrix row label must be a char");
        SWH_REQUIRE(alphabet.contains(fields[0][0]),
                    "matrix row symbol not in alphabet");
        const Code row = alphabet.encode(fields[0][0]);
        for (std::size_t c = 0; c < cols.size(); ++c) {
            try {
                m.set(row, cols[c], std::stoi(fields[c + 1]));
            } catch (const std::invalid_argument&) {
                throw ParseError("non-numeric matrix entry: " + fields[c + 1]);
            }
        }
    }
    SWH_REQUIRE(have_header, "matrix stream had no header line");
    m.recompute_extrema();
    return m;
}

std::string ScoreMatrix::to_ncbi_string() const {
    std::ostringstream os;
    os << "# " << name_ << '\n' << " ";
    for (std::size_t b = 0; b < k_; ++b) {
        os << "  " << alphabet_->decode(static_cast<Code>(b));
    }
    os << '\n';
    for (std::size_t a = 0; a < k_; ++a) {
        os << alphabet_->decode(static_cast<Code>(a));
        for (std::size_t b = 0; b < k_; ++b) {
            const Score v = data_[a * k_ + b];
            os << (v < 0 || v > 9 ? " " : "  ") << v;
        }
        os << '\n';
    }
    return os.str();
}

ScoreMatrix ScoreMatrix::blosum62() {
    // NCBI BLOSUM62, 24x24, row/column order ARNDCQEGHILKMFPSTWYVBZX*.
    static constexpr std::int8_t kRows[24][24] = {
        // A
        {4, -1, -2, -2, 0, -1, -1, 0, -2, -1, -1, -1, -1, -2, -1, 1, 0, -3,
         -2, 0, -2, -1, 0, -4},
        // R
        {-1, 5, 0, -2, -3, 1, 0, -2, 0, -3, -2, 2, -1, -3, -2, -1, -1, -3,
         -2, -3, -1, 0, -1, -4},
        // N
        {-2, 0, 6, 1, -3, 0, 0, 0, 1, -3, -3, 0, -2, -3, -2, 1, 0, -4, -2,
         -3, 3, 0, -1, -4},
        // D
        {-2, -2, 1, 6, -3, 0, 2, -1, -1, -3, -4, -1, -3, -3, -1, 0, -1, -4,
         -3, -3, 4, 1, -1, -4},
        // C
        {0, -3, -3, -3, 9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1,
         -2, -2, -1, -3, -3, -2, -4},
        // Q
        {-1, 1, 0, 0, -3, 5, 2, -2, 0, -3, -2, 1, 0, -3, -1, 0, -1, -2, -1,
         -2, 0, 3, -1, -4},
        // E
        {-1, 0, 0, 2, -4, 2, 5, -2, 0, -3, -3, 1, -2, -3, -1, 0, -1, -3, -2,
         -2, 1, 4, -1, -4},
        // G
        {0, -2, 0, -1, -3, -2, -2, 6, -2, -4, -4, -2, -3, -3, -2, 0, -2, -2,
         -3, -3, -1, -2, -1, -4},
        // H
        {-2, 0, 1, -1, -3, 0, 0, -2, 8, -3, -3, -1, -2, -1, -2, -1, -2, -2,
         2, -3, 0, 0, -1, -4},
        // I
        {-1, -3, -3, -3, -1, -3, -3, -4, -3, 4, 2, -3, 1, 0, -3, -2, -1, -3,
         -1, 3, -3, -3, -1, -4},
        // L
        {-1, -2, -3, -4, -1, -2, -3, -4, -3, 2, 4, -2, 2, 0, -3, -2, -1, -2,
         -1, 1, -4, -3, -1, -4},
        // K
        {-1, 2, 0, -1, -3, 1, 1, -2, -1, -3, -2, 5, -1, -3, -1, 0, -1, -3,
         -2, -2, 0, 1, -1, -4},
        // M
        {-1, -1, -2, -3, -1, 0, -2, -3, -2, 1, 2, -1, 5, 0, -2, -1, -1, -1,
         -1, 1, -3, -1, -1, -4},
        // F
        {-2, -3, -3, -3, -2, -3, -3, -3, -1, 0, 0, -3, 0, 6, -4, -2, -2, 1,
         3, -1, -3, -3, -1, -4},
        // P
        {-1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4, 7, -1, -1,
         -4, -3, -2, -2, -1, -2, -4},
        // S
        {1, -1, 1, 0, -1, 0, 0, 0, -1, -2, -2, 0, -1, -2, -1, 4, 1, -3, -2,
         -2, 0, 0, 0, -4},
        // T
        {0, -1, 0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1, 1, 5, -2,
         -2, 0, -1, -1, 0, -4},
        // W
        {-3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1, 1, -4, -3, -2,
         11, 2, -3, -4, -3, -2, -4},
        // Y
        {-2, -2, -2, -3, -2, -1, -2, -3, 2, -1, -1, -2, -1, 3, -3, -2, -2, 2,
         7, -1, -3, -2, -1, -4},
        // V
        {0, -3, -3, -3, -1, -2, -2, -3, -3, 3, 1, -2, 1, -1, -2, -2, 0, -3,
         -1, 4, -3, -2, -1, -4},
        // B
        {-2, -1, 3, 4, -3, 0, 1, -1, 0, -3, -4, 0, -3, -3, -2, 0, -1, -4, -3,
         -3, 4, 1, -1, -4},
        // Z
        {-1, 0, 0, 1, -3, 3, 4, -2, 0, -3, -3, 1, -1, -3, -1, 0, -1, -3, -2,
         -2, 1, 4, -1, -4},
        // X
        {0, -1, -1, -1, -2, -1, -1, -1, -1, -1, -1, -1, -1, -1, -2, 0, 0, -2,
         -1, -1, -1, -1, -1, -4},
        // *
        {-4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4,
         -4, -4, -4, -4, -4, -4, 1},
    };
    ScoreMatrix m(Alphabet::protein(), "BLOSUM62");
    for (Code a = 0; a < 24; ++a)
        for (Code b = 0; b < 24; ++b) m.set(a, b, kRows[a][b]);
    return m;
}

}  // namespace swh::align

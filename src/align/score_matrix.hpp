#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "align/alphabet.hpp"

namespace swh::align {

/// Alignment score type. 32 bits: the widest the fallback kernels need.
using Score = std::int32_t;

/// Affine gap model (Gotoh): a gap of length L >= 1 costs
/// open + L * extend, i.e. the first gap residue costs open + extend and
/// each further residue costs extend. Both values are non-negative
/// penalties (they are *subtracted* from the score).
struct GapPenalty {
    Score open = 10;
    Score extend = 2;

    Score cost(Score length) const { return open + extend * length; }
};

/// Substitution matrix over an Alphabet. Values fit int8 (every common
/// matrix does), which is what the 8-bit striped kernel requires.
class ScoreMatrix {
public:
    ScoreMatrix(const Alphabet& alphabet, std::string name);

    /// BLOSUM62 over the 24-letter protein alphabet (NCBI values).
    static ScoreMatrix blosum62();

    /// Simple match/mismatch matrix over any alphabet; the wildcard
    /// scores `wildcard_score` against everything (including itself).
    static ScoreMatrix match_mismatch(const Alphabet& alphabet, Score match,
                                      Score mismatch,
                                      Score wildcard_score = 0);

    /// Parses an NCBI-format matrix file (column header line + one row
    /// per symbol). Symbols must all belong to `alphabet`; alphabet
    /// symbols missing from the file keep score 0.
    static ScoreMatrix from_ncbi_stream(const Alphabet& alphabet,
                                        std::istream& in, std::string name);

    /// Renders in the same NCBI format (round-trips through
    /// from_ncbi_stream).
    std::string to_ncbi_string() const;

    const Alphabet& alphabet() const { return *alphabet_; }
    const std::string& name() const { return name_; }

    Score at(Code a, Code b) const {
        return data_[static_cast<std::size_t>(a) * k_ + b];
    }

    void set(Code a, Code b, Score v);

    /// Score for two residue characters (encoded via the alphabet).
    Score score(char a, char b) const {
        return at(alphabet_->encode(a), alphabet_->encode(b));
    }

    Score min_score() const { return min_; }
    Score max_score() const { return max_; }

    /// Bias that makes every entry non-negative: -min_score() (>= 0).
    /// Used by the unsigned 8-bit striped kernel.
    Score bias() const { return min_ < 0 ? -min_ : 0; }

    bool is_symmetric() const;

private:
    const Alphabet* alphabet_;
    std::string name_;
    std::size_t k_;
    std::vector<Score> data_;
    Score min_ = 0;
    Score max_ = 0;

    void recompute_extrema();
};

}  // namespace swh::align

#include "align/local_align.hpp"

#include <algorithm>
#include <vector>

#include "align/sw_scalar.hpp"
#include "align/traceback.hpp"
#include "util/error.hpp"

namespace swh::align {

Alignment sw_align_affine_lowmem(std::span<const Code> s,
                                 std::span<const Code> t,
                                 const ScoreMatrix& matrix, GapPenalty gap,
                                 std::size_t max_rect_cells) {
    const LocalEnd fwd = sw_end_affine(s, t, matrix, gap);
    if (fwd.score == 0) return Alignment{};

    // Reverse pass over the prefix rectangle [0..s_end] x [0..t_end]. The
    // best local alignment of the reversed prefixes has the same optimal
    // score; its end cell maps to the start of a co-optimal alignment.
    std::vector<Code> s_rev(s.begin(), s.begin() + fwd.s_end + 1);
    std::vector<Code> t_rev(t.begin(), t.begin() + fwd.t_end + 1);
    std::reverse(s_rev.begin(), s_rev.end());
    std::reverse(t_rev.begin(), t_rev.end());
    const LocalEnd rev = sw_end_affine(s_rev, t_rev, matrix, gap);
    SWH_REQUIRE(rev.score == fwd.score,
                "reverse locate pass disagrees with forward score");

    const std::size_t s_begin = fwd.s_end - rev.s_end;
    const std::size_t t_begin = fwd.t_end - rev.t_end;
    // The reverse pass's own end (in forward coordinates) bounds the
    // rectangle that contains a full optimal alignment starting there.
    const std::size_t s_len = rev.s_end + 1;
    const std::size_t t_len = rev.t_end + 1;
    SWH_REQUIRE(s_len * t_len <= max_rect_cells,
                "alignment footprint exceeds max_rect_cells");

    Alignment sub = sw_align_affine(s.subspan(s_begin, s_len),
                                    t.subspan(t_begin, t_len), matrix, gap);
    SWH_REQUIRE(sub.score == fwd.score,
                "rectangle traceback lost the optimal score");
    sub.s_begin += s_begin;
    sub.s_end += s_begin;
    sub.t_begin += t_begin;
    sub.t_end += t_begin;
    return sub;
}

}  // namespace swh::align

#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "align/score_matrix.hpp"
#include "align/sequence.hpp"
#include "simd/arch.hpp"

namespace swh::align {

/// Striped query profile (Farrar 2007). For a query of length m split
/// into L lanes of segments of length seg = ceil(m/L), entry
/// (symbol a, segment i, lane l) holds the substitution score of a
/// against query residue q[l*seg + i] — plus `bias` in the 8-bit profile
/// so every stored value is non-negative. Out-of-range (padding) slots
/// store 0, which decays harmlessly in the kernel.
template <typename Cell>
struct StripedProfile {
    std::size_t query_len = 0;
    std::size_t seg_len = 0;  ///< vectors per column
    int lanes = 0;
    Score bias = 0;  ///< 0 for the signed 16-bit profile
    Score max_entry = 0;  ///< largest stored value; bounds one add step
    std::size_t symbols = 0;
    std::vector<Cell> data;  ///< [symbol][segment][lane], vectors contiguous

    const Cell* row(Code symbol) const {
        return data.data() +
               static_cast<std::size_t>(symbol) * seg_len *
                   static_cast<std::size_t>(lanes);
    }
};

using Profile8 = StripedProfile<std::uint8_t>;
using Profile16 = StripedProfile<std::int16_t>;

Profile8 build_profile8(std::span<const Code> query, const ScoreMatrix& matrix,
                        int lanes);
Profile16 build_profile16(std::span<const Code> query,
                          const ScoreMatrix& matrix, int lanes);

/// Result of one striped scan. `overflow` means the arithmetic may have
/// saturated and the caller must escalate to a wider kernel.
struct StripedResult {
    Score score = 0;
    bool overflow = false;
};

/// 8-bit unsigned saturated kernel (max representable score 255, the
/// paper's 8-bit bound). `isa` must be supported (see simd::is_supported).
StripedResult sw_striped_u8(const Profile8& profile, std::span<const Code> db,
                            GapPenalty gap, simd::IsaLevel isa);

/// 16-bit signed saturated kernel (max score 32767, the paper's 16-bit
/// bound).
StripedResult sw_striped_i16(const Profile16& profile,
                             std::span<const Code> db, GapPenalty gap,
                             simd::IsaLevel isa);

/// Number of lanes each kernel uses at a given ISA level (profile layout
/// depends on it).
int lanes_u8(simd::IsaLevel isa);
int lanes_i16(simd::IsaLevel isa);

/// Query-vs-many-databases scorer with automatic 8 -> 16 -> 32-bit
/// escalation, mirroring how SSE database-search tools (and the paper's
/// adapted Farrar code) handle score overflow. Thread-safe for concurrent
/// score() calls after construction.
class StripedAligner {
public:
    StripedAligner(std::vector<Code> query, const ScoreMatrix& matrix,
                   GapPenalty gap,
                   simd::IsaLevel isa = simd::best_supported());

    /// Exact local alignment score of the query against one db sequence.
    Score score(std::span<const Code> db) const;

    std::span<const Code> query() const { return query_; }
    simd::IsaLevel isa() const { return isa_; }

    struct Stats {
        std::uint64_t runs8 = 0;    ///< sequences settled by the u8 kernel
        std::uint64_t runs16 = 0;   ///< escalations to i16
        std::uint64_t runs32 = 0;   ///< escalations to scalar int32
    };
    /// Cumulative escalation counters (approximate under concurrency).
    Stats stats() const;

private:
    std::vector<Code> query_;
    const ScoreMatrix* matrix_;
    GapPenalty gap_;
    simd::IsaLevel isa_;
    Profile8 profile8_;
    Profile16 profile16_;
    mutable std::atomic<std::uint64_t> runs8_{0}, runs16_{0}, runs32_{0};
};

}  // namespace swh::align

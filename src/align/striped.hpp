#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "align/score_matrix.hpp"
#include "align/sequence.hpp"
#include "simd/arch.hpp"
#include "util/annotations.hpp"

namespace swh::align {

/// Reusable, 64-byte-aligned scratch memory for the striped kernels and
/// the scalar int32 rescore fallback. One instance per worker thread;
/// the kernels carve their H/E buffers out of it, so repeated score()
/// calls perform zero heap allocations once the scratch has grown to the
/// largest segment in the workload. Not thread-safe — never share one
/// instance between concurrently scoring threads.
class ScanScratch {
public:
    /// Three kernel buffers (H-load, H-store, E), each `bytes_per_buffer`
    /// long and 64-byte aligned. Contents are unspecified; the kernel
    /// zeroes what it needs.
    struct KernelBuffers {
        void* h_load;
        void* h_store;
        void* e;
    };
    KernelBuffers kernel_buffers(std::size_t bytes_per_buffer);

    /// Two int32 rolling rows (H and F) of `cells_per_row` entries each,
    /// for the scalar Gotoh rescore. Aliases the kernel buffers — the
    /// two uses never overlap within one subject.
    struct ScoreRows {
        Score* h;
        Score* f;
    };
    ScoreRows score_rows(std::size_t cells_per_row);

    std::size_t capacity() const { return cap_; }

private:
    void ensure(std::size_t bytes);

    struct Free {
        void operator()(std::byte* p) const;
    };
    std::unique_ptr<std::byte[], Free> buf_;
    std::size_t cap_ = 0;
};

/// Striped query profile (Farrar 2007). For a query of length m split
/// into L lanes of segments of length seg = ceil(m/L), entry
/// (symbol a, segment i, lane l) holds the substitution score of a
/// against query residue q[l*seg + i] — plus `bias` in the 8-bit profile
/// so every stored value is non-negative. Out-of-range (padding) slots
/// store 0, which decays harmlessly in the kernel.
template <typename Cell>
struct StripedProfile {
    std::size_t query_len = 0;
    std::size_t seg_len = 0;  ///< vectors per column
    int lanes = 0;
    Score bias = 0;  ///< 0 for the signed 16-bit profile
    Score max_entry = 0;  ///< largest stored value; bounds one add step
    std::size_t symbols = 0;
    /// [symbol][segment][lane], vectors contiguous. Over-allocated so
    /// the first row starts 64-byte aligned (see align_pad): with the
    /// real lane widths every row is then naturally aligned for its
    /// vector size, so profile loads never split cache lines.
    std::vector<Cell> data;
    std::size_t align_pad = 0;  ///< Cells from data.data() to the base

    const Cell* row(Code symbol) const {
        return data.data() + align_pad +
               static_cast<std::size_t>(symbol) * seg_len *
                   static_cast<std::size_t>(lanes);
    }
};

using Profile8 = StripedProfile<std::uint8_t>;
using Profile16 = StripedProfile<std::int16_t>;

Profile8 build_profile8(std::span<const Code> query, const ScoreMatrix& matrix,
                        int lanes);
Profile16 build_profile16(std::span<const Code> query,
                          const ScoreMatrix& matrix, int lanes);

/// Result of one striped scan. `overflow` means the arithmetic may have
/// saturated and the caller must escalate to a wider kernel.
struct StripedResult {
    Score score = 0;
    bool overflow = false;
};

/// 8-bit unsigned saturated kernel (max representable score 255, the
/// paper's 8-bit bound). `isa` must be supported (see simd::is_supported).
/// This convenience overload allocates its own scratch per call; hot
/// scan loops should pass a reused ScanScratch instead.
StripedResult sw_striped_u8(const Profile8& profile, std::span<const Code> db,
                            GapPenalty gap, simd::IsaLevel isa);

/// Allocation-free variant: H/E buffers come from `scratch`. With
/// `trusted = true` the per-residue alphabet check is skipped — only
/// pass pre-validated residues (e.g. a db::PackedDatabase arena).
SWH_HOT_PATH StripedResult sw_striped_u8(const Profile8& profile, std::span<const Code> db,
                            GapPenalty gap, simd::IsaLevel isa,
                            ScanScratch& scratch, bool trusted = false);

/// 16-bit signed saturated kernel (max score 32767, the paper's 16-bit
/// bound).
StripedResult sw_striped_i16(const Profile16& profile,
                             std::span<const Code> db, GapPenalty gap,
                             simd::IsaLevel isa);

/// Allocation-free variant; see sw_striped_u8.
SWH_HOT_PATH StripedResult sw_striped_i16(const Profile16& profile,
                             std::span<const Code> db, GapPenalty gap,
                             simd::IsaLevel isa, ScanScratch& scratch,
                             bool trusted = false);

/// Number of lanes each kernel uses at a given ISA level (profile layout
/// depends on it).
int lanes_u8(simd::IsaLevel isa);
int lanes_i16(simd::IsaLevel isa);

/// Query-vs-many-databases scorer with automatic 8 -> 16 -> 32-bit
/// escalation, mirroring how SSE database-search tools (and the paper's
/// adapted Farrar code) handle score overflow. Thread-safe for concurrent
/// score() calls after construction.
struct InterseqProfile;

class StripedAligner {
public:
    StripedAligner(std::vector<Code> query, const ScoreMatrix& matrix,
                   GapPenalty gap,
                   simd::IsaLevel isa = simd::best_supported());
    ~StripedAligner();

    /// Exact local alignment score of the query against one db sequence.
    /// Uses a thread-local ScanScratch, so steady-state calls are
    /// allocation-free on every escalation path.
    Score score(std::span<const Code> db) const;

    /// Same, with an explicit scratch (for callers that manage their own
    /// per-worker scratch, e.g. DatabaseScanner).
    SWH_HOT_PATH Score score(std::span<const Code> db,
                             ScanScratch& scratch) const;

    /// Pass-1 primitive of the batched two-pass scan: runs only the u8
    /// kernel. On `overflow` the caller must settle the subject later
    /// via rescore_wide(). Does NOT touch the escalation counters —
    /// batch-credit settled subjects with credit_runs8().
    SWH_HOT_PATH StripedResult score_u8(std::span<const Code> db,
                                        ScanScratch& scratch,
                                        bool trusted = false) const;

    /// Pass-2: i16 kernel, then the exact scalar int32 fallback, both
    /// routed through `scratch`. Bumps runs16/runs32 exactly once.
    SWH_HOT_PATH Score rescore_wide(std::span<const Code> db,
                                    ScanScratch& scratch,
                                    bool trusted = false) const;

    /// Final-escalation primitive: the exact scalar int32 alignment,
    /// for subjects a 16-bit kernel already proved saturated (e.g. an
    /// overflowed lane of a batched interseq i16 escalation) — skips
    /// the redundant striped i16 attempt rescore_wide would repeat.
    /// Bumps runs32 once.
    SWH_HOT_PATH Score rescore_i32(std::span<const Code> db,
                                   ScanScratch& scratch) const;

    /// Credits `n` subjects settled by pass-1 score_u8() calls: one
    /// atomic op per flushed batch instead of one per subject.
    void credit_runs8(std::uint64_t n) const {
        if (n > 0) runs8_.fetch_add(n, std::memory_order_relaxed);
    }

    /// Credits `n` subjects settled at 16 bits by a batched interseq
    /// escalation pass (the scanner's cohort-wide 8 -> 16 pass-2).
    void credit_runs16(std::uint64_t n) const {
        if (n > 0) runs16_.fetch_add(n, std::memory_order_relaxed);
    }

    std::span<const Code> query() const { return query_; }
    const ScoreMatrix& matrix() const { return *matrix_; }
    GapPenalty gap() const { return gap_; }
    simd::IsaLevel isa() const { return isa_; }

    /// Transposed query profile for the inter-sequence kernels (see
    /// align/interseq.hpp), built at construction when the matrix fits
    /// them; null means the scan must stay on the striped kernels.
    const InterseqProfile* interseq() const { return interseq_.get(); }

    struct Stats {
        std::uint64_t runs8 = 0;    ///< sequences settled by the u8 kernel
        std::uint64_t runs16 = 0;   ///< escalations to i16
        std::uint64_t runs32 = 0;   ///< escalations to scalar int32
    };
    /// Cumulative escalation counters. Exact: every settled subject is
    /// counted exactly once, on whichever path settled it.
    Stats stats() const;

private:
    std::vector<Code> query_;
    const ScoreMatrix* matrix_;
    GapPenalty gap_;
    simd::IsaLevel isa_;
    Profile8 profile8_;
    Profile16 profile16_;
    std::unique_ptr<InterseqProfile> interseq_;  // null = not eligible
    mutable std::atomic<std::uint64_t> runs8_{0}, runs16_{0}, runs32_{0};
};

}  // namespace swh::align

#include "align/myers_miller.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "util/error.hpp"

namespace swh::align {

namespace {

constexpr Score kNegInf = std::numeric_limits<Score>::min() / 4;

// Score-maximisation port of Myers & Miller's `diff` routine. A gap of
// length L costs open + L*extend. `tb` / `te` are the effective open
// penalties for a vertical gap (gap in t, consuming s) touching the top
// / bottom boundary of the current block: 0 when such a gap continues a
// crossing gap chosen by the parent call, `gap.open` otherwise.
class MyersMiller {
public:
    MyersMiller(std::span<const Code> s, std::span<const Code> t,
                const ScoreMatrix& matrix, GapPenalty gap)
        : s_(s), t_(t), matrix_(matrix), gap_(gap) {
        cc_.resize(t.size() + 1);
        dd_.resize(t.size() + 1);
        rr_.resize(t.size() + 1);
        ss_.resize(t.size() + 1);
    }

    std::vector<AlignOp> run() {
        ops_.reserve(s_.size() + t_.size());
        diff(0, s_.size(), 0, t_.size(), gap_.open, gap_.open);
        return std::move(ops_);
    }

private:
    void emit(AlignOp op, std::size_t count = 1) {
        ops_.insert(ops_.end(), count, op);
    }

    Score gap_cost(std::size_t len) const {
        return len == 0 ? 0
                        : gap_.open +
                              gap_.extend * static_cast<Score>(len);
    }

    // Aligns s[s0, s0+m) with t[t0, t0+n), appending ops.
    void diff(std::size_t s0, std::size_t m, std::size_t t0, std::size_t n,
              Score tb, Score te) {
        if (m == 0) {
            if (n > 0) emit(AlignOp::Insert, n);
            return;
        }
        if (n == 0) {
            emit(AlignOp::Delete, m);
            return;
        }
        if (m == 1) {
            diff_single_row(s0, t0, n, tb, te);
            return;
        }

        const std::size_t mid = m / 2;

        // Forward pass: cc_[j] = best score of s[s0, s0+mid) x t[t0,
        // t0+j); dd_[j] = same but ending in a vertical gap (open paid).
        cc_[0] = 0;
        for (std::size_t j = 1; j <= n; ++j) {
            cc_[j] = -gap_cost(j);
            dd_[j] = cc_[j] - gap_.open;  // extending from here re-pays open
        }
        dd_[0] = kNegInf;
        Score t_col = -tb;  // vertical gap down column 0 opens with tb
        for (std::size_t i = 1; i <= mid; ++i) {
            Score diag = cc_[0];
            t_col -= gap_.extend;
            Score c = t_col;
            cc_[0] = c;
            dd_[0] = c;  // the column-0 alignment ends in a vertical gap
            Score e = kNegInf;  // horizontal state
            for (std::size_t j = 1; j <= n; ++j) {
                e = std::max(e, c - gap_.open) - gap_.extend;
                const Score d =
                    std::max(dd_[j], cc_[j] - gap_.open) - gap_.extend;
                const Score sub =
                    diag + matrix_.at(s_[s0 + i - 1], t_[t0 + j - 1]);
                const Score best = std::max({d, e, sub});
                diag = cc_[j];
                cc_[j] = best;
                dd_[j] = d;
                c = best;
            }
        }

        // Reverse pass over the lower block s[s0+mid, s0+m) x t, with
        // boundary te at the bottom.
        rr_[n] = 0;
        for (std::size_t j = 1; j <= n; ++j) {
            rr_[n - j] = -gap_cost(j);
            ss_[n - j] = rr_[n - j] - gap_.open;
        }
        ss_[n] = kNegInf;
        t_col = -te;
        for (std::size_t i = 1; i <= m - mid; ++i) {
            Score diag = rr_[n];
            t_col -= gap_.extend;
            Score c = t_col;
            rr_[n] = c;
            ss_[n] = c;
            Score e = kNegInf;
            for (std::size_t j = 1; j <= n; ++j) {
                const std::size_t col = n - j;
                e = std::max(e, c - gap_.open) - gap_.extend;
                const Score d =
                    std::max(ss_[col], rr_[col] - gap_.open) - gap_.extend;
                const Score sub = diag + matrix_.at(s_[s0 + m - i],
                                                    t_[t0 + col]);
                const Score best = std::max({d, e, sub});
                diag = rr_[col];
                rr_[col] = best;
                ss_[col] = d;
                c = best;
            }
        }

        // Choose the crossing column and whether the split goes through
        // a match boundary (type 1) or a vertical gap spanning rows
        // mid-1 / mid (type 2, which saves one gap-open).
        Score best = kNegInf;
        std::size_t best_j = 0;
        bool type2 = false;
        for (std::size_t j = 0; j <= n; ++j) {
            const Score t1 = cc_[j] + rr_[j];
            const Score t2 = dd_[j] + ss_[j] + gap_.open;
            if (t1 >= best) {
                best = t1;
                best_j = j;
                type2 = false;
            }
            if (t2 > best) {
                best = t2;
                best_j = j;
                type2 = true;
            }
        }

        if (!type2) {
            diff(s0, mid, t0, best_j, tb, gap_.open);
            diff(s0 + mid, m - mid, t0 + best_j, n - best_j, gap_.open,
                 te);
        } else {
            // The crossing vertical gap covers rows mid-1 and mid (s
            // residues s0+mid-1 and s0+mid).
            diff(s0, mid - 1, t0, best_j, tb, 0);
            emit(AlignOp::Delete, 2);
            diff(s0 + mid + 1, m - mid - 1, t0 + best_j, n - best_j, 0,
                 te);
        }
    }

    // Base case m == 1: either the single residue is deleted (the gap
    // may merge across the cheaper boundary) or it matches some t[j].
    void diff_single_row(std::size_t s0, std::size_t t0, std::size_t n,
                         Score tb, Score te) {
        const Code a = s_[s0];
        Score best = -(std::min(tb, te) + gap_.extend) -
                     gap_cost(n);  // delete a, insert all of t
        std::size_t best_j = 0;    // 0 = deletion option
        for (std::size_t j = 1; j <= n; ++j) {
            const Score v = -gap_cost(j - 1) + matrix_.at(a, t_[t0 + j - 1]) -
                            gap_cost(n - j);
            if (v > best) {
                best = v;
                best_j = j;
            }
        }
        if (best_j == 0) {
            // Put the delete adjacent to the cheaper boundary so run-
            // merging in the final op list realises the discount.
            if (tb <= te) {
                emit(AlignOp::Delete);
                emit(AlignOp::Insert, n);
            } else {
                emit(AlignOp::Insert, n);
                emit(AlignOp::Delete);
            }
        } else {
            emit(AlignOp::Insert, best_j - 1);
            emit(AlignOp::Match);
            emit(AlignOp::Insert, n - best_j);
        }
    }

    std::span<const Code> s_;
    std::span<const Code> t_;
    const ScoreMatrix& matrix_;
    GapPenalty gap_;
    std::vector<Score> cc_, dd_, rr_, ss_;
    std::vector<AlignOp> ops_;
};

}  // namespace

Alignment nw_align_affine_linear(std::span<const Code> s,
                                 std::span<const Code> t,
                                 const ScoreMatrix& matrix, GapPenalty gap) {
    SWH_REQUIRE(gap.open >= 0 && gap.extend >= 0,
                "gap penalties must be non-negative");
    Alignment out;
    out.s_end = s.size();
    out.t_end = t.size();
    MyersMiller mm(s, t, matrix, gap);
    out.ops = mm.run();
    out.score = score_alignment_affine(out, s, t, matrix, gap);
    return out;
}

}  // namespace swh::align

#pragma once

// Inter-sequence Smith-Waterman scan kernels (SWIPE / SWAPHI style):
// one database subject per SIMD lane, W subjects scored at once. Unlike
// the intra-sequence striped kernel (Farrar), throughput does not
// degrade on short queries — there is no lazy-F correction pass, no
// query-padding waste, and the per-column work is a plain row sweep —
// so the scan dispatcher prefers these kernels for short/medium
// queries and falls back to the striped kernel elsewhere.
//
// The subjects come from a lane-interleaved cohort layout (see
// db::PackedDatabase::interleaved): W length-adjacent subjects grouped
// into a cohort, residues stored column-major (column j holds residue j
// of every lane), short lanes padded with kPadCode. Scoring uses a
// TRANSPOSED query profile: row i is a 32-entry table of biased scores
// of query residue i against every alphabet symbol, gathered per lane
// by the subject residue (simd lookup32). This needs every residue
// code, including the padding sentinel, to fit in 5 bits — hence the
// alphabet-size gate in interseq_supported().

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "align/score_matrix.hpp"
#include "align/sequence.hpp"
#include "simd/arch.hpp"
#include "util/annotations.hpp"

namespace swh::align {

class ScanScratch;

/// One width-W cohort of the lane-interleaved database layout.
struct CohortDesc {
    /// Flag bit: the cohort was assembled by the compacted-tail build —
    /// its members are ragged scan-order leftovers (low-fill natural
    /// groups and the partial tail) re-packed into a dense group rather
    /// than W consecutive scan slots.
    static constexpr std::uint32_t kCompacted = 1u << 0;

    std::uint64_t offset = 0;     ///< Code offset into the cohort arena
    std::uint64_t residues = 0;   ///< real residues (sum of member lengths)
    std::uint32_t columns = 0;    ///< stored columns = longest member length
    /// First member index. With a slots table (InterleavedCohorts::slots)
    /// this indexes the table — lane l is scan slot slots[first_slot+l];
    /// without one it is the scan slot of lane 0 directly.
    std::uint32_t first_slot = 0;
    std::uint32_t lanes_used = 0; ///< members; tail cohort may be partial
    std::uint32_t flags = 0;      ///< kCompacted et al.
};

/// Non-owning view of a lane-interleaved cohort layout. Column j of a
/// cohort is `lanes` consecutive bytes at `arena + offset + j*lanes`
/// (pad lanes past lanes_used hold only pad_code). Lane l of cohort d
/// is the subject at scan-order slot `slots[d.first_slot + l]` when the
/// member table is present, or `d.first_slot + l` when `slots` is null
/// (hand-built views with strictly consecutive members).
struct InterleavedCohorts {
    const Code* arena = nullptr;
    const CohortDesc* cohorts = nullptr;
    /// Cohort-member table: scan-order slot of each lane, cohort-major.
    /// Null = identity (every cohort covers consecutive scan slots).
    const std::uint32_t* slots = nullptr;
    std::size_t count = 0;
    int lanes = 0;
    Code pad_code = 0;
};

/// Transposed query profile for the inter-sequence kernels: row i holds
/// the biased score of query residue i against every alphabet symbol,
/// padded to a 32-entry lookup table (slots past the alphabet — which
/// include kPadCode — stay 0, the most-penalising biased score, so
/// padded lanes decay and retire).
struct InterseqProfile {
    static constexpr std::size_t kStride = 32;  ///< LUT row width
    /// Padding sentinel residue: always the top 5-bit code, so it can
    /// never collide with a real symbol (interseq_supported() requires
    /// alphabet size <= 31).
    static constexpr Code kPadCode = 31;

    std::size_t query_len = 0;
    Score bias = 0;      ///< added to every stored entry (>= 0)
    Score max_raw = 0;   ///< largest unbiased entry; bounds one i16 add
    std::size_t symbols = 0;
    std::vector<std::uint8_t> data;  ///< query_len rows of kStride
    std::size_t align_pad = 0;       ///< bytes from data.data() to base

    const std::uint8_t* row(std::size_t i) const {
        return data.data() + align_pad + i * kStride;
    }
};

/// Query rows per tile of the query-tiled kernel variants: each tile's
/// DP row arrays (two query-tile rows of W-lane vectors) stay L1/L2
/// resident where a monolithic sweep of a 2000+ residue query spills.
/// Also the untiled/tiled dispatch boundary in align::DatabaseScanner.
constexpr std::size_t kInterseqTileRows = 256;

/// Number of query tiles the tiled kernels cut a query of `qlen` rows
/// into: balanced tiles (sizes differ by at most one row) of at most
/// kInterseqTileRows rows each.
constexpr std::size_t interseq_tile_count(std::size_t qlen) {
    return qlen <= kInterseqTileRows
               ? std::size_t{1}
               : (qlen + kInterseqTileRows - 1) / kInterseqTileRows;
}

/// Caller-owned carried column state for the query-tiled kernels: per
/// subject column, the H values of a tile's bottom row and the running
/// vertical-gap (F) values entering the next tile. Lives outside
/// ScanScratch because kernel_buffers() may move when it grows — the
/// carried state must stay put across the per-tile buffer requests.
/// One instance per worker thread; the same instance serves u8 and i16
/// calls of any cohort width (the buffer only ever grows).
class InterseqColumnState {
public:
    struct Arrays {
        void* h = nullptr;  ///< bottom-row H per column
        void* f = nullptr;  ///< carried F per column
    };

    /// Returns the two carried arrays, each `bytes_per_array` long and
    /// 64-byte aligned, growing the backing allocation if needed. The
    /// contents are kernel-internal scratch — callers never initialise
    /// or read them.
    Arrays arrays(std::size_t bytes_per_array);

    std::size_t capacity() const { return capacity_; }

private:
    struct Free {
        void operator()(std::byte* p) const;
    };

    std::unique_ptr<std::byte[], Free> buffer_;
    std::size_t capacity_ = 0;
};

/// True if the matrix fits the inter-sequence kernels: alphabet small
/// enough for 5-bit codes plus the padding sentinel, and the biased
/// score range inside u8.
bool interseq_supported(const ScoreMatrix& matrix);

InterseqProfile build_interseq_profile(std::span<const Code> query,
                                       const ScoreMatrix& matrix);

/// 8-bit inter-sequence kernel over one cohort: `cols` points at
/// `columns` column-major residue columns of `lanes_u8(isa)` lanes.
/// Writes each lane's best (unbiased) score to lane_best[0..lanes) and
/// returns the saturating-overflow lane mask (bit l set = lane l may
/// have saturated, same `score + bias >= 255` bound as the striped u8
/// kernel; those subjects must be settled by a wider kernel). Residues
/// must be pre-validated (< alphabet size, or == kPadCode).
SWH_HOT_PATH std::uint64_t sw_interseq_u8(const InterseqProfile& profile, const Code* cols,
                             std::size_t columns, GapPenalty gap,
                             simd::IsaLevel isa, ScanScratch& scratch,
                             std::uint8_t* lane_best);

/// 16-bit companion: same cohort geometry (the u8 lane count — each
/// lane is widened to two i16 half-vectors internally), per-lane i16
/// best scores and the `score + max_raw >= 32767` overflow mask of the
/// striped i16 kernel. `lanes_used` is an optional occupancy hint
/// (0 = all lanes): when the caller packed at most half the lanes —
/// typical for the scanner's 8 -> 16 escalation batches — the kernel
/// skips the all-pad hi half-vectors entirely. Lanes are dataflow-
/// independent, so the used lanes' scores and overflow bits are
/// unchanged; unused lanes report score 0.
SWH_HOT_PATH std::uint64_t sw_interseq_i16(const InterseqProfile& profile, const Code* cols,
                              std::size_t columns, GapPenalty gap,
                              simd::IsaLevel isa, ScanScratch& scratch,
                              std::int16_t* lane_best,
                              std::size_t lanes_used = 0);

/// Query-tiled u8 kernel for long queries: processes the query in
/// interseq_tile_count() balanced row tiles (each <= kInterseqTileRows
/// rows), carrying per-column H/F state through `state` so only the
/// tile's own DP rows compete for cache. Scores and the overflow mask
/// are bit-identical to sw_interseq_u8 — tiling changes the cell visit
/// order, not the dataflow, and every op is per-cell saturating.
SWH_HOT_PATH std::uint64_t sw_interseq_u8_tiled(const InterseqProfile& profile,
                                   const Code* cols, std::size_t columns,
                                   GapPenalty gap, simd::IsaLevel isa,
                                   ScanScratch& scratch,
                                   InterseqColumnState& state,
                                   std::uint8_t* lane_best);

/// 16-bit companion of the tiled kernel, for the 8 -> 16 escalation of
/// tiled cohorts: same tiling geometry, carried state held as i16
/// half-vector pairs (widened consistently with the untiled i16
/// kernel), bit-identical to sw_interseq_i16. `lanes_used` as in
/// sw_interseq_i16.
SWH_HOT_PATH std::uint64_t sw_interseq_i16_tiled(const InterseqProfile& profile,
                                    const Code* cols, std::size_t columns,
                                    GapPenalty gap, simd::IsaLevel isa,
                                    ScanScratch& scratch,
                                    InterseqColumnState& state,
                                    std::int16_t* lane_best,
                                    std::size_t lanes_used = 0);

}  // namespace swh::align

#pragma once

// Inter-sequence Smith-Waterman scan kernels (SWIPE / SWAPHI style):
// one database subject per SIMD lane, W subjects scored at once. Unlike
// the intra-sequence striped kernel (Farrar), throughput does not
// degrade on short queries — there is no lazy-F correction pass, no
// query-padding waste, and the per-column work is a plain row sweep —
// so the scan dispatcher prefers these kernels for short/medium
// queries and falls back to the striped kernel elsewhere.
//
// The subjects come from a lane-interleaved cohort layout (see
// db::PackedDatabase::interleaved): W length-adjacent subjects grouped
// into a cohort, residues stored column-major (column j holds residue j
// of every lane), short lanes padded with kPadCode. Scoring uses a
// TRANSPOSED query profile: row i is a 32-entry table of biased scores
// of query residue i against every alphabet symbol, gathered per lane
// by the subject residue (simd lookup32). This needs every residue
// code, including the padding sentinel, to fit in 5 bits — hence the
// alphabet-size gate in interseq_supported().

#include <cstdint>
#include <span>
#include <vector>

#include "align/score_matrix.hpp"
#include "align/sequence.hpp"
#include "simd/arch.hpp"

namespace swh::align {

class ScanScratch;

/// One width-W cohort of the lane-interleaved database layout.
struct CohortDesc {
    std::uint64_t offset = 0;     ///< Code offset into the cohort arena
    std::uint64_t residues = 0;   ///< real residues (sum of member lengths)
    std::uint32_t columns = 0;    ///< stored columns = longest member length
    std::uint32_t first_slot = 0; ///< first scan-order slot covered
    std::uint32_t lanes_used = 0; ///< members; tail cohort may be partial
};

/// Non-owning view of a lane-interleaved cohort layout. Column j of a
/// cohort is `lanes` consecutive bytes at `arena + offset + j*lanes`;
/// lane l of cohort c is the subject at scan-order slot
/// `first_slot + l` (pad lanes past lanes_used hold only pad_code).
struct InterleavedCohorts {
    const Code* arena = nullptr;
    const CohortDesc* cohorts = nullptr;
    std::size_t count = 0;
    int lanes = 0;
    Code pad_code = 0;
};

/// Transposed query profile for the inter-sequence kernels: row i holds
/// the biased score of query residue i against every alphabet symbol,
/// padded to a 32-entry lookup table (slots past the alphabet — which
/// include kPadCode — stay 0, the most-penalising biased score, so
/// padded lanes decay and retire).
struct InterseqProfile {
    static constexpr std::size_t kStride = 32;  ///< LUT row width
    /// Padding sentinel residue: always the top 5-bit code, so it can
    /// never collide with a real symbol (interseq_supported() requires
    /// alphabet size <= 31).
    static constexpr Code kPadCode = 31;

    std::size_t query_len = 0;
    Score bias = 0;      ///< added to every stored entry (>= 0)
    Score max_raw = 0;   ///< largest unbiased entry; bounds one i16 add
    std::size_t symbols = 0;
    std::vector<std::uint8_t> data;  ///< query_len rows of kStride
    std::size_t align_pad = 0;       ///< bytes from data.data() to base

    const std::uint8_t* row(std::size_t i) const {
        return data.data() + align_pad + i * kStride;
    }
};

/// True if the matrix fits the inter-sequence kernels: alphabet small
/// enough for 5-bit codes plus the padding sentinel, and the biased
/// score range inside u8.
bool interseq_supported(const ScoreMatrix& matrix);

InterseqProfile build_interseq_profile(std::span<const Code> query,
                                       const ScoreMatrix& matrix);

/// 8-bit inter-sequence kernel over one cohort: `cols` points at
/// `columns` column-major residue columns of `lanes_u8(isa)` lanes.
/// Writes each lane's best (unbiased) score to lane_best[0..lanes) and
/// returns the saturating-overflow lane mask (bit l set = lane l may
/// have saturated, same `score + bias >= 255` bound as the striped u8
/// kernel; those subjects must be settled by a wider kernel). Residues
/// must be pre-validated (< alphabet size, or == kPadCode).
std::uint64_t sw_interseq_u8(const InterseqProfile& profile, const Code* cols,
                             std::size_t columns, GapPenalty gap,
                             simd::IsaLevel isa, ScanScratch& scratch,
                             std::uint8_t* lane_best);

/// 16-bit companion: same cohort geometry (the u8 lane count — each
/// lane is widened to two i16 half-vectors internally), per-lane i16
/// best scores and the `score + max_raw >= 32767` overflow mask of the
/// striped i16 kernel.
std::uint64_t sw_interseq_i16(const InterseqProfile& profile, const Code* cols,
                              std::size_t columns, GapPenalty gap,
                              simd::IsaLevel isa, ScanScratch& scratch,
                              std::int16_t* lane_best);

}  // namespace swh::align

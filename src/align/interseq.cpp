#include "align/interseq.hpp"

#include <algorithm>
#include <new>

#include "align/interseq_kernels.hpp"
#include "simd/simd.hpp"
#include "util/error.hpp"

namespace swh::align {

namespace {
constexpr std::size_t kColumnStateAlign = 64;
}

void InterseqColumnState::Free::operator()(std::byte* p) const {
    ::operator delete[](p, std::align_val_t{kColumnStateAlign});
}

InterseqColumnState::Arrays InterseqColumnState::arrays(
    std::size_t bytes_per_array) {
    // Both carried arrays live in one allocation, each rounded up to
    // the alignment so the F half starts aligned too. Geometric growth:
    // a scan touches many cohort widths, and reallocating per cohort
    // would put an allocation in the steady-state hot path.
    const std::size_t rounded =
        (bytes_per_array + kColumnStateAlign - 1) & ~(kColumnStateAlign - 1);
    const std::size_t need = 2 * rounded;
    if (need > capacity_) {
        const std::size_t grown = std::max(need, capacity_ * 2);
        buffer_.reset(static_cast<std::byte*>(
            ::operator new[](grown, std::align_val_t{kColumnStateAlign})));
        capacity_ = grown;
    }
    Arrays a;
    a.h = buffer_.get();
    a.f = buffer_.get() + rounded;
    return a;
}

bool interseq_supported(const ScoreMatrix& matrix) {
    // Residue codes plus the padding sentinel must fit the 32-entry
    // lookup table, and the biased score range must fit u8 (the same
    // bound build_profile8 enforces for the striped kernel).
    return matrix.alphabet().size() <= InterseqProfile::kPadCode &&
           matrix.max_score() + matrix.bias() <= 255;
}

InterseqProfile build_interseq_profile(std::span<const Code> query,
                                       const ScoreMatrix& matrix) {
    SWH_REQUIRE(interseq_supported(matrix),
                "matrix does not fit the inter-sequence kernels");
    InterseqProfile p;
    p.query_len = query.size();
    p.bias = matrix.bias();
    p.symbols = matrix.alphabet().size();
    // Over-allocate one row and slide the base so every 32-byte LUT row
    // is naturally aligned (rows are reloaded once per cell).
    p.data.assign((query.size() + 1) * InterseqProfile::kStride, 0);
    const auto addr = reinterpret_cast<std::uintptr_t>(p.data.data());
    p.align_pad = (InterseqProfile::kStride - addr % InterseqProfile::kStride) %
                  InterseqProfile::kStride;
    for (std::size_t i = 0; i < query.size(); ++i) {
        std::uint8_t* row = p.data.data() + p.align_pad +
                            i * InterseqProfile::kStride;
        for (Code a = 0; a < p.symbols; ++a) {
            const Score raw = matrix.at(query[i], a);
            p.max_raw = std::max(p.max_raw, raw);
            row[a] = static_cast<std::uint8_t>(raw + p.bias);
        }
        // Slots past the alphabet (including kPadCode) keep 0 = the
        // most-penalising biased score, so padded lanes only decay.
    }
    return p;
}

std::uint64_t sw_interseq_u8(const InterseqProfile& profile, const Code* cols,
                             std::size_t columns, GapPenalty gap,
                             simd::IsaLevel isa, ScanScratch& scratch,
                             std::uint8_t* lane_best) {
    switch (isa) {
        case simd::IsaLevel::Scalar:
            return detail::interseq_u8<simd::U8x16s>(profile, cols, columns,
                                                     gap, scratch, lane_best);
#if defined(__SSE2__)
        case simd::IsaLevel::SSE2:
            return detail::interseq_u8<simd::U8x16>(profile, cols, columns,
                                                    gap, scratch, lane_best);
#endif
#if defined(__AVX2__)
        case simd::IsaLevel::AVX2:
            return detail::interseq_u8<simd::U8x32>(profile, cols, columns,
                                                    gap, scratch, lane_best);
#endif
#if defined(__AVX512BW__)
        case simd::IsaLevel::AVX512:
            return detail::interseq_u8<simd::U8x64>(profile, cols, columns,
                                                    gap, scratch, lane_best);
#endif
        default:
            break;
    }
    SWH_REQUIRE(false, "ISA level not compiled in");
    return 0;
}

namespace {

/// True when the occupancy hint allows skipping the hi i16 half-vectors
/// of a W-lane cohort: the caller packed lanes [0, lanes_used) only.
constexpr bool lo_half_fits(std::size_t lanes_used, int w) {
    return lanes_used != 0 && lanes_used * 2 <= static_cast<std::size_t>(w);
}

}  // namespace

std::uint64_t sw_interseq_i16(const InterseqProfile& profile, const Code* cols,
                              std::size_t columns, GapPenalty gap,
                              simd::IsaLevel isa, ScanScratch& scratch,
                              std::int16_t* lane_best,
                              std::size_t lanes_used) {
    switch (isa) {
        case simd::IsaLevel::Scalar:
            return lo_half_fits(lanes_used, simd::U8x16s::kLanes)
                       ? detail::interseq_i16<simd::U8x16s, true>(
                             profile, cols, columns, gap, scratch, lane_best)
                       : detail::interseq_i16<simd::U8x16s>(
                             profile, cols, columns, gap, scratch, lane_best);
#if defined(__SSE2__)
        case simd::IsaLevel::SSE2:
            return lo_half_fits(lanes_used, simd::U8x16::kLanes)
                       ? detail::interseq_i16<simd::U8x16, true>(
                             profile, cols, columns, gap, scratch, lane_best)
                       : detail::interseq_i16<simd::U8x16>(
                             profile, cols, columns, gap, scratch, lane_best);
#endif
#if defined(__AVX2__)
        case simd::IsaLevel::AVX2:
            return lo_half_fits(lanes_used, simd::U8x32::kLanes)
                       ? detail::interseq_i16<simd::U8x32, true>(
                             profile, cols, columns, gap, scratch, lane_best)
                       : detail::interseq_i16<simd::U8x32>(
                             profile, cols, columns, gap, scratch, lane_best);
#endif
#if defined(__AVX512BW__)
        case simd::IsaLevel::AVX512:
            return lo_half_fits(lanes_used, simd::U8x64::kLanes)
                       ? detail::interseq_i16<simd::U8x64, true>(
                             profile, cols, columns, gap, scratch, lane_best)
                       : detail::interseq_i16<simd::U8x64>(
                             profile, cols, columns, gap, scratch, lane_best);
#endif
        default:
            break;
    }
    SWH_REQUIRE(false, "ISA level not compiled in");
    return 0;
}

std::uint64_t sw_interseq_u8_tiled(const InterseqProfile& profile,
                                   const Code* cols, std::size_t columns,
                                   GapPenalty gap, simd::IsaLevel isa,
                                   ScanScratch& scratch,
                                   InterseqColumnState& state,
                                   std::uint8_t* lane_best) {
    switch (isa) {
        case simd::IsaLevel::Scalar:
            return detail::interseq_u8_tiled<simd::U8x16s>(
                profile, cols, columns, gap, scratch, state, lane_best);
#if defined(__SSE2__)
        case simd::IsaLevel::SSE2:
            return detail::interseq_u8_tiled<simd::U8x16>(
                profile, cols, columns, gap, scratch, state, lane_best);
#endif
#if defined(__AVX2__)
        case simd::IsaLevel::AVX2:
            return detail::interseq_u8_tiled<simd::U8x32>(
                profile, cols, columns, gap, scratch, state, lane_best);
#endif
#if defined(__AVX512BW__)
        case simd::IsaLevel::AVX512:
            return detail::interseq_u8_tiled<simd::U8x64>(
                profile, cols, columns, gap, scratch, state, lane_best);
#endif
        default:
            break;
    }
    SWH_REQUIRE(false, "ISA level not compiled in");
    return 0;
}

std::uint64_t sw_interseq_i16_tiled(const InterseqProfile& profile,
                                    const Code* cols, std::size_t columns,
                                    GapPenalty gap, simd::IsaLevel isa,
                                    ScanScratch& scratch,
                                    InterseqColumnState& state,
                                    std::int16_t* lane_best,
                                    std::size_t lanes_used) {
    switch (isa) {
        case simd::IsaLevel::Scalar:
            return lo_half_fits(lanes_used, simd::U8x16s::kLanes)
                       ? detail::interseq_i16_tiled<simd::U8x16s, true>(
                             profile, cols, columns, gap, scratch, state,
                             lane_best)
                       : detail::interseq_i16_tiled<simd::U8x16s>(
                             profile, cols, columns, gap, scratch, state,
                             lane_best);
#if defined(__SSE2__)
        case simd::IsaLevel::SSE2:
            return lo_half_fits(lanes_used, simd::U8x16::kLanes)
                       ? detail::interseq_i16_tiled<simd::U8x16, true>(
                             profile, cols, columns, gap, scratch, state,
                             lane_best)
                       : detail::interseq_i16_tiled<simd::U8x16>(
                             profile, cols, columns, gap, scratch, state,
                             lane_best);
#endif
#if defined(__AVX2__)
        case simd::IsaLevel::AVX2:
            return lo_half_fits(lanes_used, simd::U8x32::kLanes)
                       ? detail::interseq_i16_tiled<simd::U8x32, true>(
                             profile, cols, columns, gap, scratch, state,
                             lane_best)
                       : detail::interseq_i16_tiled<simd::U8x32>(
                             profile, cols, columns, gap, scratch, state,
                             lane_best);
#endif
#if defined(__AVX512BW__)
        case simd::IsaLevel::AVX512:
            return lo_half_fits(lanes_used, simd::U8x64::kLanes)
                       ? detail::interseq_i16_tiled<simd::U8x64, true>(
                             profile, cols, columns, gap, scratch, state,
                             lane_best)
                       : detail::interseq_i16_tiled<simd::U8x64>(
                             profile, cols, columns, gap, scratch, state,
                             lane_best);
#endif
        default:
            break;
    }
    SWH_REQUIRE(false, "ISA level not compiled in");
    return 0;
}

}  // namespace swh::align

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace swh::align {

/// A residue code: index into an Alphabet's symbol set.
using Code = std::uint8_t;

/// Maps residue characters (amino acids / nucleotide bases) to dense
/// codes 0..size()-1 and back. Unknown characters map to the alphabet's
/// wildcard symbol ('X' for protein, 'N' for nucleic acids), mirroring
/// how database-search tools treat ambiguity codes.
class Alphabet {
public:
    /// 24-letter protein alphabet in NCBI matrix order:
    /// ARNDCQEGHILKMFPSTWYVBZX* (B/Z ambiguity, X wildcard, * stop).
    static const Alphabet& protein();

    /// ACGTN (T also accepts U on encode, so RNA input works).
    static const Alphabet& dna();

    /// ACGUN.
    static const Alphabet& rna();

    std::size_t size() const { return symbols_.size(); }

    std::string_view symbols() const { return symbols_; }

    const std::string& name() const { return name_; }

    Code wildcard() const { return wildcard_; }

    /// Case-insensitive; unmapped characters become the wildcard.
    Code encode(char c) const { return enc_[static_cast<unsigned char>(c)]; }

    char decode(Code code) const;

    std::vector<Code> encode(std::string_view s) const;

    std::string decode(const std::vector<Code>& codes) const;

    /// True if `c` maps to a real symbol (not via the wildcard fallback).
    bool contains(char c) const;

    bool operator==(const Alphabet& other) const {
        return symbols_ == other.symbols_;
    }

private:
    Alphabet(std::string name, std::string symbols, char wildcard_char,
             std::string_view aliases = {});

    std::string name_;
    std::string symbols_;
    Code wildcard_;
    std::array<Code, 256> enc_{};
    std::array<bool, 256> known_{};
};

}  // namespace swh::align

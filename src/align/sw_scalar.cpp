#include "align/sw_scalar.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace swh::align {

DpMatrix sw_matrix_linear(std::span<const Code> s, std::span<const Code> t,
                          const ScoreMatrix& matrix, Score gap) {
    SWH_REQUIRE(gap >= 0, "gap penalty must be non-negative");
    DpMatrix dp;
    dp.rows = s.size() + 1;
    dp.cols = t.size() + 1;
    dp.h.assign(dp.rows * dp.cols, 0);
    for (std::size_t i = 1; i <= s.size(); ++i) {
        for (std::size_t j = 1; j <= t.size(); ++j) {
            const Score diag =
                dp.at(i - 1, j - 1) + matrix.at(s[i - 1], t[j - 1]);
            const Score up = dp.at(i - 1, j) - gap;
            const Score left = dp.at(i, j - 1) - gap;
            dp.at(i, j) = std::max({diag, up, left, Score{0}});
        }
    }
    return dp;
}

Score sw_score_linear(std::span<const Code> s, std::span<const Code> t,
                      const ScoreMatrix& matrix, Score gap) {
    SWH_REQUIRE(gap >= 0, "gap penalty must be non-negative");
    std::vector<Score> row(t.size() + 1, 0);
    Score best = 0;
    for (std::size_t i = 1; i <= s.size(); ++i) {
        Score diag = row[0];  // H(i-1, j-1)
        for (std::size_t j = 1; j <= t.size(); ++j) {
            const Score h = std::max(
                {diag + matrix.at(s[i - 1], t[j - 1]), row[j] - gap,
                 row[j - 1] - gap, Score{0}});
            diag = row[j];
            row[j] = h;
            best = std::max(best, h);
        }
    }
    return best;
}

namespace {

// Shared core for sw_score_affine / sw_end_affine.
//
// Gotoh recurrences (H over s[1..i], t[1..j]):
//   E(i,j) = max(E(i,j-1), H(i,j-1) - open) - extend   (gap in s, same row)
//   F(i,j) = max(F(i-1,j), H(i-1,j) - open) - extend   (gap in t, same col)
//   H(i,j) = max(H(i-1,j-1) + sub(s_i,t_j), E(i,j), F(i,j), 0)
// E is a running scalar along the row; F needs one slot per column.
// Boundary E(i,0) = F(0,j) = "no open gap"; initialising those to 0 is
// safe because the bogus chains they seed stay strictly negative and H is
// clamped at 0 (see tests/align/gotoh_boundary_test).
template <bool TrackEnd>
LocalEnd gotoh_core(std::span<const Code> s, std::span<const Code> t,
                    const ScoreMatrix& matrix, GapPenalty gap, Score* h_row,
                    Score* f_col) {
    SWH_REQUIRE(gap.open >= 0 && gap.extend >= 0,
                "gap penalties must be non-negative");
    LocalEnd best;
    std::fill_n(h_row, t.size() + 1, Score{0});  // H(i-1,*) rolling to H(i,*)
    std::fill_n(f_col, t.size() + 1, Score{0});  // F(i-1,*) rolling to F(i,*)
    for (std::size_t i = 1; i <= s.size(); ++i) {
        Score h_diag = h_row[0];  // H(i-1, j-1)
        Score e = 0;              // E(i, j) running along the row
        for (std::size_t j = 1; j <= t.size(); ++j) {
            // h_row[j-1] already holds H(i, j-1); h_row[j] still H(i-1, j).
            e = std::max(e, h_row[j - 1] - gap.open) - gap.extend;
            f_col[j] = std::max(f_col[j], h_row[j] - gap.open) - gap.extend;
            const Score h = std::max(
                {h_diag + matrix.at(s[i - 1], t[j - 1]), e, f_col[j],
                 Score{0}});
            h_diag = h_row[j];
            h_row[j] = h;
            if constexpr (TrackEnd) {
                if (h > best.score) {
                    best.score = h;
                    best.s_end = i - 1;
                    best.t_end = j - 1;
                }
            } else {
                best.score = std::max(best.score, h);
            }
        }
    }
    return best;
}

}  // namespace

Score sw_score_affine(std::span<const Code> s, std::span<const Code> t,
                      const ScoreMatrix& matrix, GapPenalty gap) {
    std::vector<Score> h_row(t.size() + 1), f_col(t.size() + 1);
    return gotoh_core<false>(s, t, matrix, gap, h_row.data(), f_col.data())
        .score;
}

Score sw_score_affine_rows(std::span<const Code> s, std::span<const Code> t,
                           const ScoreMatrix& matrix, GapPenalty gap,
                           Score* h_row, Score* f_col) {
    return gotoh_core<false>(s, t, matrix, gap, h_row, f_col).score;
}

LocalEnd sw_end_affine(std::span<const Code> s, std::span<const Code> t,
                       const ScoreMatrix& matrix, GapPenalty gap) {
    std::vector<Score> h_row(t.size() + 1), f_col(t.size() + 1);
    return gotoh_core<true>(s, t, matrix, gap, h_row.data(), f_col.data());
}

}  // namespace swh::align

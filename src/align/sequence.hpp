#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "align/alphabet.hpp"

namespace swh::align {

/// A biological sequence, residues stored as alphabet codes.
struct Sequence {
    std::string id;           ///< accession / name (first token of header)
    std::string description;  ///< rest of the FASTA header, may be empty
    std::vector<Code> residues;

    std::size_t size() const { return residues.size(); }
    bool empty() const { return residues.empty(); }

    static Sequence from_string(const Alphabet& alphabet, std::string id,
                                std::string_view letters) {
        return Sequence{std::move(id), {}, alphabet.encode(letters)};
    }
};

/// Total residues across a set of sequences.
inline std::uint64_t total_residues(const std::vector<Sequence>& seqs) {
    std::uint64_t total = 0;
    for (const Sequence& s : seqs) total += s.size();
    return total;
}

/// DP-matrix cell count for one query x database comparison — the unit
/// behind the paper's GCUPS (billions of cell updates per second).
inline std::uint64_t cell_count(std::size_t query_len,
                                std::uint64_t db_residues) {
    return static_cast<std::uint64_t>(query_len) * db_residues;
}

inline double gcups(std::uint64_t cells, double seconds) {
    return seconds > 0.0 ? static_cast<double>(cells) / seconds / 1e9 : 0.0;
}

}  // namespace swh::align

#include "align/db_scan.hpp"

#include "util/error.hpp"

namespace swh::align {

DatabaseScanner::DatabaseScanner(const StripedAligner& aligner,
                                 PackedSubjects subjects, std::size_t chunk)
    : aligner_(&aligner), subjects_(subjects), chunk_(chunk) {
    SWH_REQUIRE(chunk_ >= 1, "scan chunk must be at least 1");
    SWH_REQUIRE(subjects_.count == 0 || subjects_.arena != nullptr,
                "packed view has subjects but no arena");
    // The one-time validation that lets every kernel call below run
    // with the per-residue alphabet check compiled out.
    SWH_REQUIRE(subjects_.count == 0 ||
                    static_cast<std::size_t>(subjects_.max_code) <
                        aligner.matrix().alphabet().size(),
                "packed residues outside the aligner's alphabet");
}

}  // namespace swh::align

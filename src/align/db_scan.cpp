#include "align/db_scan.hpp"

#include <cstdlib>

#include "util/error.hpp"

namespace swh::align {

DatabaseScanner::DatabaseScanner(const StripedAligner& aligner,
                                 PackedSubjects subjects, std::size_t chunk,
                                 InterleavedCohorts cohorts,
                                 const std::atomic<Score>* threshold)
    : aligner_(&aligner),
      subjects_(subjects),
      chunk_(chunk),
      cohorts_(cohorts),
      threshold_(threshold) {
    SWH_REQUIRE(chunk_ >= 1, "scan chunk must be at least 1");
    SWH_REQUIRE(subjects_.count == 0 || subjects_.arena != nullptr,
                "packed view has subjects but no arena");
    // The one-time validation that lets every kernel call below run
    // with the per-residue alphabet check compiled out.
    SWH_REQUIRE(subjects_.count == 0 ||
                    static_cast<std::size_t>(subjects_.max_code) <
                        aligner.matrix().alphabet().size(),
                "packed residues outside the aligner's alphabet");
    if (cohorts_.count == 0) return;

    SWH_REQUIRE(cohorts_.arena != nullptr && cohorts_.cohorts != nullptr,
                "cohort view has cohorts but no arena");
    SWH_REQUIRE(aligner.interseq() != nullptr,
                "cohort scan needs an inter-sequence-capable aligner");
    SWH_REQUIRE(cohorts_.lanes == lanes_u8(aligner.isa()),
                "cohort width does not match the aligner's u8 lane count");
    SWH_REQUIRE(cohorts_.lanes <= 64,
                "cohort width exceeds the 64-lane overflow mask");
    SWH_REQUIRE(cohorts_.pad_code == InterseqProfile::kPadCode,
                "cohort padding sentinel mismatch");
    cohort_mode_ = true;

    // Precompute the per-cohort kernel choice once: the scan itself then
    // branches on a byte. Inter-sequence pays off when the query is
    // short enough for its DP rows to stay cache-resident AND the
    // cohort's lanes are near-equal length (pad cells are wasted work).
    const bool query_ok =
        aligner.interseq()->query_len <= kInterseqMaxQuery &&
        aligner.interseq()->query_len > 0;
    choice_.resize(cohorts_.count, 0);
    for (std::size_t c = 0; c < cohorts_.count; ++c) {
        const CohortDesc& d = cohorts_.cohorts[c];
        const std::uint64_t cells =
            std::uint64_t{d.columns} *
            static_cast<std::uint64_t>(cohorts_.lanes);
        choice_[c] = (query_ok && d.columns > 0 &&
                      d.residues * 100 >= cells * kInterseqMinFillPct)
                         ? 1
                         : 0;
    }

    if (threshold_ == nullptr || cohorts_.count <= kPrimeCohorts) return;
    // Threshold priming: scan the cohorts most likely to hold the top
    // scorers first, so the dynamic threshold reaches a useful value
    // before the bulk of the scan. Homologs of the query cluster near
    // its length, so rank cohorts by |mean subject length - query
    // length| and pull the best kPrimeCohorts to the front; both the
    // primed prefix and the remainder stay in the layout's original
    // (longest-first) relative order to keep claims deterministic.
    const auto qlen = static_cast<std::int64_t>(aligner.query().size());
    std::vector<std::uint32_t> ranked(cohorts_.count);
    for (std::size_t c = 0; c < cohorts_.count; ++c) {
        ranked[c] = static_cast<std::uint32_t>(c);
    }
    const auto dist = [&](std::uint32_t c) {
        const CohortDesc& d = cohorts_.cohorts[c];
        const auto mean = static_cast<std::int64_t>(
            d.residues / std::max<std::uint32_t>(1, d.lanes_used));
        return std::llabs(mean - qlen);
    };
    std::partial_sort(ranked.begin(), ranked.begin() + kPrimeCohorts,
                      ranked.end(), [&](std::uint32_t a, std::uint32_t b) {
                          const auto da = dist(a), db = dist(b);
                          return da != db ? da < db : a < b;
                      });
    // Primed cohorts run best-match first — the sooner the likeliest
    // cohort's exact scores land, the sooner the threshold bites.
    std::vector<std::uint8_t> primed(cohorts_.count, 0);
    prime_order_.reserve(cohorts_.count);
    for (std::size_t p = 0; p < kPrimeCohorts; ++p) {
        primed[ranked[p]] = 1;
    }
    prime_order_.assign(ranked.begin(), ranked.begin() + kPrimeCohorts);
    for (std::uint32_t c = 0; c < cohorts_.count; ++c) {
        if (!primed[c]) prime_order_.push_back(c);
    }
}

void DatabaseScanner::credit_dispatch(const WorkerTallies& t) {
    if (t.cohorts_filtered > 0) {
        cohorts_filtered_.fetch_add(t.cohorts_filtered,
                                    std::memory_order_relaxed);
    }
    if (t.rebounds16 > 0) {
        rebounds16_.fetch_add(t.rebounds16, std::memory_order_relaxed);
    }
    if (t.pruned > 0) {
        subjects_pruned_.fetch_add(t.pruned, std::memory_order_relaxed);
    }
    if (t.cohorts_interseq > 0) {
        cohorts_interseq_.fetch_add(t.cohorts_interseq,
                                    std::memory_order_relaxed);
    }
    if (t.cohorts_striped > 0) {
        cohorts_striped_.fetch_add(t.cohorts_striped,
                                   std::memory_order_relaxed);
    }
    if (t.subjects_interseq > 0) {
        subjects_interseq_.fetch_add(t.subjects_interseq,
                                     std::memory_order_relaxed);
    }
    if (t.subjects_striped > 0) {
        subjects_striped_.fetch_add(t.subjects_striped,
                                    std::memory_order_relaxed);
    }
}

DatabaseScanner::DispatchStats DatabaseScanner::dispatch_stats() const {
    return DispatchStats{
        cohorts_interseq_.load(std::memory_order_relaxed),
        cohorts_striped_.load(std::memory_order_relaxed),
        subjects_interseq_.load(std::memory_order_relaxed),
        subjects_striped_.load(std::memory_order_relaxed)};
}

DatabaseScanner::FilterStats DatabaseScanner::filter_stats() const {
    return FilterStats{cohorts_filtered_.load(std::memory_order_relaxed),
                       rebounds16_.load(std::memory_order_relaxed),
                       subjects_pruned_.load(std::memory_order_relaxed)};
}

}  // namespace swh::align

#include "align/db_scan.hpp"

#include <cstdlib>

#include "util/error.hpp"

namespace swh::align {

DatabaseScanner::DatabaseScanner(const StripedAligner& aligner,
                                 PackedSubjects subjects, std::size_t chunk,
                                 InterleavedCohorts cohorts,
                                 const std::atomic<Score>* threshold)
    : aligner_(&aligner),
      subjects_(subjects),
      chunk_(chunk),
      cohorts_(cohorts),
      threshold_(threshold) {
    SWH_REQUIRE(chunk_ >= 1, "scan chunk must be at least 1");
    SWH_REQUIRE(subjects_.count == 0 || subjects_.arena != nullptr,
                "packed view has subjects but no arena");
    // The one-time validation that lets every kernel call below run
    // with the per-residue alphabet check compiled out.
    SWH_REQUIRE(subjects_.count == 0 ||
                    static_cast<std::size_t>(subjects_.max_code) <
                        aligner.matrix().alphabet().size(),
                "packed residues outside the aligner's alphabet");
    if (cohorts_.count == 0) return;

    SWH_REQUIRE(cohorts_.arena != nullptr && cohorts_.cohorts != nullptr,
                "cohort view has cohorts but no arena");
    SWH_REQUIRE(aligner.interseq() != nullptr,
                "cohort scan needs an inter-sequence-capable aligner");
    SWH_REQUIRE(cohorts_.lanes == lanes_u8(aligner.isa()),
                "cohort width does not match the aligner's u8 lane count");
    SWH_REQUIRE(cohorts_.lanes <= 64,
                "cohort width exceeds the 64-lane overflow mask");
    SWH_REQUIRE(cohorts_.pad_code == InterseqProfile::kPadCode,
                "cohort padding sentinel mismatch");
    cohort_mode_ = true;

    // Precompute the per-cohort route once: the scan itself then
    // branches on a byte. Inter-sequence pays off when the cohort is
    // full enough for the lane-parallel win to survive the pad cells
    // (the bar shrinks with query length, see min_fill_pct); queries
    // past kInterseqTileRows take the query-tiled kernel variant, whose
    // carried column state keeps the per-tile DP rows cache-resident,
    // so no query length forces the striped fallback by itself.
    const std::size_t qlen = aligner.interseq()->query_len;
    choice_.resize(cohorts_.count, CohortPath::kStriped);
    if (qlen > 0) {
        const std::uint64_t bar = min_fill_pct(qlen);
        const CohortPath eligible = qlen <= kInterseqTileRows
                                        ? CohortPath::kInterseq
                                        : CohortPath::kTiled;
        for (std::size_t c = 0; c < cohorts_.count; ++c) {
            const CohortDesc& d = cohorts_.cohorts[c];
            const std::uint64_t cells =
                std::uint64_t{d.columns} *
                static_cast<std::uint64_t>(cohorts_.lanes);
            if (d.columns > 0 && d.residues * 100 >= cells * bar) {
                choice_[c] = eligible;
            }
        }
    }

    if (threshold_ == nullptr || cohorts_.count <= kPrimeCohorts) return;
    // Threshold priming: scan the cohorts most likely to hold the top
    // scorers first, so the dynamic threshold reaches a useful value
    // before the bulk of the scan. Homologs of the query cluster near
    // its length, so rank cohorts by |mean subject length - query
    // length| and pull the best kPrimeCohorts to the front. The
    // remainder follows in ascending column order — shortest cohorts
    // carry the cheapest sweeps and the best pruning odds, and the
    // filter-off guard (claim_cohorts) relies on crossing the
    // hopeless-length boundary before the expensive cohorts arrive.
    const auto want_len = static_cast<std::int64_t>(aligner.query().size());
    std::vector<std::uint32_t> ranked(cohorts_.count);
    for (std::size_t c = 0; c < cohorts_.count; ++c) {
        ranked[c] = static_cast<std::uint32_t>(c);
    }
    const auto dist = [&](std::uint32_t c) {
        const CohortDesc& d = cohorts_.cohorts[c];
        const auto mean = static_cast<std::int64_t>(
            d.residues / std::max<std::uint32_t>(1, d.lanes_used));
        return std::llabs(mean - want_len);
    };
    std::partial_sort(ranked.begin(), ranked.begin() + kPrimeCohorts,
                      ranked.end(), [&](std::uint32_t a, std::uint32_t b) {
                          const auto da = dist(a), db = dist(b);
                          return da != db ? da < db : a < b;
                      });
    // Primed cohorts run best-match first — the sooner the likeliest
    // cohort's exact scores land, the sooner the threshold bites.
    std::vector<std::uint8_t> primed(cohorts_.count, 0);
    prime_order_.reserve(cohorts_.count);
    for (std::size_t p = 0; p < kPrimeCohorts; ++p) {
        primed[ranked[p]] = 1;
    }
    prime_order_.assign(ranked.begin(), ranked.begin() + kPrimeCohorts);
    // The layout orders cohorts longest-first; walk it backwards for
    // the ascending-columns remainder.
    for (std::uint32_t c = static_cast<std::uint32_t>(cohorts_.count); c > 0;
         --c) {
        if (!primed[c - 1]) prime_order_.push_back(c - 1);
    }
}

void DatabaseScanner::credit_dispatch(const WorkerTallies& t) {
    if (t.cohorts_filtered > 0) {
        cohorts_filtered_.fetch_add(t.cohorts_filtered,
                                    std::memory_order_relaxed);
    }
    if (t.rebounds16 > 0) {
        rebounds16_.fetch_add(t.rebounds16, std::memory_order_relaxed);
    }
    if (t.pruned > 0) {
        subjects_pruned_.fetch_add(t.pruned, std::memory_order_relaxed);
    }
    if (t.filter_offs > 0) {
        filter_offs_.fetch_add(t.filter_offs, std::memory_order_relaxed);
    }
    if (t.cohorts_interseq > 0) {
        cohorts_interseq_.fetch_add(t.cohorts_interseq,
                                    std::memory_order_relaxed);
    }
    if (t.cohorts_tiled > 0) {
        cohorts_tiled_.fetch_add(t.cohorts_tiled, std::memory_order_relaxed);
    }
    if (t.cohorts_compacted > 0) {
        cohorts_compacted_.fetch_add(t.cohorts_compacted,
                                     std::memory_order_relaxed);
    }
    if (t.cohorts_striped > 0) {
        cohorts_striped_.fetch_add(t.cohorts_striped,
                                   std::memory_order_relaxed);
    }
    if (t.repacks > 0) {
        repacks_.fetch_add(t.repacks, std::memory_order_relaxed);
    }
    if (t.escalations16 > 0) {
        escalations16_.fetch_add(t.escalations16, std::memory_order_relaxed);
    }
    if (t.subjects_interseq > 0) {
        subjects_interseq_.fetch_add(t.subjects_interseq,
                                     std::memory_order_relaxed);
    }
    if (t.subjects_compacted > 0) {
        subjects_compacted_.fetch_add(t.subjects_compacted,
                                      std::memory_order_relaxed);
    }
    if (t.subjects_striped > 0) {
        subjects_striped_.fetch_add(t.subjects_striped,
                                    std::memory_order_relaxed);
    }
}

DatabaseScanner::DispatchStats DatabaseScanner::dispatch_stats() const {
    return DispatchStats{
        cohorts_interseq_.load(std::memory_order_relaxed),
        cohorts_tiled_.load(std::memory_order_relaxed),
        cohorts_compacted_.load(std::memory_order_relaxed),
        cohorts_striped_.load(std::memory_order_relaxed),
        repacks_.load(std::memory_order_relaxed),
        escalations16_.load(std::memory_order_relaxed),
        subjects_interseq_.load(std::memory_order_relaxed),
        subjects_compacted_.load(std::memory_order_relaxed),
        subjects_striped_.load(std::memory_order_relaxed)};
}

DatabaseScanner::FilterStats DatabaseScanner::filter_stats() const {
    return FilterStats{cohorts_filtered_.load(std::memory_order_relaxed),
                       rebounds16_.load(std::memory_order_relaxed),
                       subjects_pruned_.load(std::memory_order_relaxed),
                       filter_offs_.load(std::memory_order_relaxed)};
}

}  // namespace swh::align

#pragma once

#include <cstdint>
#include <span>

#include "align/score_matrix.hpp"

namespace swh::align {

/// Karlin-Altschul-style statistics for local alignment scores.
///
/// Local alignment scores of unrelated sequences follow an extreme-value
/// (Gumbel) distribution: P(S >= x) ~ 1 - exp(-K m n e^(-lambda x)).
/// For gapped alignments lambda and K have no closed form, so — as
/// BLAST's authors did originally — we estimate them empirically by
/// aligning random sequence pairs and fitting the Gumbel parameters by
/// the method of moments. The fit is deterministic (seeded) per
/// (matrix, gap) pair.
struct GumbelParams {
    double lambda = 0.0;
    double k = 0.0;
    /// Lengths of the random pairs used for the fit (scores scale with
    /// log(mn), so the fit corrects for its own m*n).
    std::size_t fit_m = 0;
    std::size_t fit_n = 0;

    /// Expected number of chance hits with score >= `score` when
    /// searching a query of length m against a database of total length
    /// n (the standard E-value; edge effects ignored).
    double evalue(Score score, std::uint64_t m, std::uint64_t n) const;

    /// Normalised bit score: (lambda*S - ln K) / ln 2.
    double bit_score(Score score) const;

    /// P-value for one pairwise comparison of lengths m x n.
    double pvalue(Score score, std::uint64_t m, std::uint64_t n) const;
};

struct GumbelFitOptions {
    std::size_t samples = 200;   ///< random pairs to align
    std::size_t pair_len = 200;  ///< length of each random sequence
    std::uint64_t seed = 0xEC0CULL;
};

/// Fits Gumbel parameters for the given scoring system by simulating
/// null (random protein) alignments with the exact Gotoh kernel.
/// Costs O(samples * pair_len^2) — a few tens of ms with the defaults.
GumbelParams fit_gumbel(const ScoreMatrix& matrix, GapPenalty gap,
                        const GumbelFitOptions& options = {});

}  // namespace swh::align

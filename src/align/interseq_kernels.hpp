#pragma once

// Templated bodies of the inter-sequence Smith-Waterman kernels: one
// subject per SIMD lane, DP state arrays indexed by query position.
// Instantiated per SIMD backend in interseq.cpp; exposed in a header so
// tests can pin a specific backend.
//
// Orientation: the outer loop walks subject columns (one interleaved
// residue vector per column), the inner loop walks the query. E (gap
// along the subject) persists per query row; F (gap along the query)
// runs as a register down the column; the diagonal H comes from the
// previous column's row array. F needs no lazy correction pass — it is
// computed exactly in order, which is the structural advantage over the
// striped kernel on short queries.
//
// Arithmetic is cell-for-cell identical to the striped kernels (same
// saturating ops in the same order), so per-lane scores and overflow
// flags are bit-identical to what striped_u8/i16 produce for the same
// subject — the property the golden-equivalence suite pins down.

#include <algorithm>
#include <cstring>

#include "align/interseq.hpp"
#include "align/striped.hpp"
#include "util/annotations.hpp"
#include "util/error.hpp"

namespace swh::align::detail {

/// 8-bit inter-sequence kernel. V must model the u8 vector interface of
/// simd/vec_scalar.hpp including lookup32/widen. Returns the overflow
/// lane mask; lane_best[0..V::kLanes) receives per-lane maxima.
template <class V>
SWH_HOT_PATH std::uint64_t interseq_u8(const InterseqProfile& p, const Code* cols,
                          std::size_t columns, GapPenalty gap,
                          ScanScratch& scratch, std::uint8_t* lane_best) {
    constexpr int W = V::kLanes;
    std::memset(lane_best, 0, W);
    const std::size_t m = p.query_len;
    if (m == 0 || columns == 0) return 0;

    const auto open_ext =
        static_cast<std::uint8_t>(std::min<Score>(gap.open + gap.extend, 255));
    const auto ext =
        static_cast<std::uint8_t>(std::min<Score>(gap.extend, 255));
    const V vGapOE = V::splat(open_ext);
    const V vGapE = V::splat(ext);
    const V vBias = V::splat(static_cast<std::uint8_t>(p.bias));

    const std::size_t bytes = m * sizeof(V);
    const ScanScratch::KernelBuffers bufs = scratch.kernel_buffers(bytes);
    V* __restrict h = static_cast<V*>(bufs.h_load);
    V* __restrict e = static_cast<V*>(bufs.e);
    std::memset(h, 0, bytes);
    std::memset(e, 0, bytes);
    V vMax = V::zero();

    for (std::size_t j = 0; j < columns; ++j) {
        const V dbv = V::load(cols + j * static_cast<std::size_t>(W));
        V vF = V::zero();
        V vDiag = V::zero();  // H(i-1, j-1); 0 boundary for i = 0
        for (std::size_t i = 0; i < m; ++i) {
            V vH = subs(adds(vDiag, lookup32(p.row(i), dbv)), vBias);
            vDiag = h[i];  // this row's H of the previous column
            vH = vmax(vH, e[i]);
            vH = vmax(vH, vF);
            vMax = vmax(vMax, vH);
            h[i] = vH;
            const V vHgap = subs(vH, vGapOE);
            e[i] = vmax(subs(e[i], vGapE), vHgap);
            vF = vmax(subs(vF, vGapE), vHgap);
        }
    }

    vMax.store(lane_best);
    std::uint64_t overflow = 0;
    for (int l = 0; l < W; ++l) {
        if (static_cast<Score>(lane_best[l]) + p.bias >= 255) {
            overflow |= std::uint64_t{1} << l;
        }
    }
    return overflow;
}

/// 16-bit inter-sequence kernel over the same u8-width cohort: each DP
/// row holds two i16 half-vectors (lanes [0, W/2) and [W/2, W) of the
/// residue vector, widened in order), so one cohort layout serves both
/// precisions. Scores are looked up through the shared biased u8 table
/// and un-biased exactly after widening. With kLoOnly the hi
/// half-vector work is compiled out — for callers that packed at most
/// W/2 lanes (escalation batches); lanes are independent, so the lo
/// lanes' results are identical either way.
template <class V, bool kLoOnly = false>
SWH_HOT_PATH std::uint64_t interseq_i16(const InterseqProfile& p, const Code* cols,
                           std::size_t columns, GapPenalty gap,
                           ScanScratch& scratch, std::int16_t* lane_best) {
    constexpr int W = V::kLanes;
    using VW = decltype(widen_lo(V::zero()));
    for (int l = 0; l < W; ++l) lane_best[l] = 0;
    const std::size_t m = p.query_len;
    if (m == 0 || columns == 0) return 0;

    const VW vGapOE = VW::splat(static_cast<std::int16_t>(
        std::min<Score>(gap.open + gap.extend, 32767)));
    const VW vGapE =
        VW::splat(static_cast<std::int16_t>(std::min<Score>(gap.extend, 32767)));
    const VW vBias = VW::splat(static_cast<std::int16_t>(p.bias));
    const VW vZero = VW::zero();

    // Row arrays hold [lo, hi] half-vector pairs: entry 2i / 2i+1.
    const std::size_t bytes = 2 * m * sizeof(VW);
    const ScanScratch::KernelBuffers bufs = scratch.kernel_buffers(bytes);
    VW* __restrict h = static_cast<VW*>(bufs.h_load);
    VW* __restrict e = static_cast<VW*>(bufs.e);
    std::memset(h, 0, bytes);
    std::memset(e, 0, bytes);
    VW vMaxLo = VW::zero();
    VW vMaxHi = VW::zero();

    for (std::size_t j = 0; j < columns; ++j) {
        const V dbv = V::load(cols + j * static_cast<std::size_t>(W));
        VW vFLo = VW::zero();
        VW vFHi = VW::zero();
        VW vDiagLo = VW::zero();
        VW vDiagHi = VW::zero();
        for (std::size_t i = 0; i < m; ++i) {
            const V s8 = lookup32(p.row(i), dbv);
            // Exact un-bias: widened entries are in [0, 255], so the
            // subtraction cannot saturate and yields the raw score.
            const VW sLo = subs(widen_lo(s8), vBias);

            VW vH = adds(vDiagLo, sLo);
            vDiagLo = h[2 * i];
            vH = vmax(vH, e[2 * i]);
            vH = vmax(vH, vFLo);
            vH = vmax(vH, vZero);  // local-alignment clamp
            vMaxLo = vmax(vMaxLo, vH);
            h[2 * i] = vH;
            VW vHgap = subs(vH, vGapOE);
            e[2 * i] = vmax(subs(e[2 * i], vGapE), vHgap);
            vFLo = vmax(subs(vFLo, vGapE), vHgap);

            if constexpr (!kLoOnly) {
                const VW sHi = subs(widen_hi(s8), vBias);
                vH = adds(vDiagHi, sHi);
                vDiagHi = h[2 * i + 1];
                vH = vmax(vH, e[2 * i + 1]);
                vH = vmax(vH, vFHi);
                vH = vmax(vH, vZero);
                vMaxHi = vmax(vMaxHi, vH);
                h[2 * i + 1] = vH;
                vHgap = subs(vH, vGapOE);
                e[2 * i + 1] = vmax(subs(e[2 * i + 1], vGapE), vHgap);
                vFHi = vmax(subs(vFHi, vGapE), vHgap);
            }
        }
    }

    vMaxLo.store(lane_best);
    vMaxHi.store(lane_best + W / 2);
    std::uint64_t overflow = 0;
    for (int l = 0; l < W; ++l) {
        if (static_cast<Score>(lane_best[l]) + p.max_raw >= 32767) {
            overflow |= std::uint64_t{1} << l;
        }
    }
    return overflow;
}

/// Query-tiled 8-bit kernel: the query is cut into balanced row tiles
/// (interseq_tile_count), and the cells of a tile are visited in the
/// same column-outer order as the untiled kernel. What crosses a tile
/// boundary, per subject column j, is exactly the state the untiled
/// inner loop would hand from row r-1 to row r: H(r-1, j) (the carried
/// bottom row, which is row r's diagonal for column j+1 and its
/// vertical neighbour for column j) and the running F entering row r.
/// E does not cross tiles — it is per-row state, fully contained in a
/// tile's own row array. Since every op is per-cell saturating, the
/// reordering is dataflow-neutral: scores and the overflow mask are
/// bit-identical to interseq_u8.
template <class V>
SWH_HOT_PATH std::uint64_t interseq_u8_tiled(const InterseqProfile& p, const Code* cols,
                                std::size_t columns, GapPenalty gap,
                                ScanScratch& scratch,
                                InterseqColumnState& state,
                                std::uint8_t* lane_best) {
    constexpr int W = V::kLanes;
    std::memset(lane_best, 0, W);
    const std::size_t m = p.query_len;
    if (m == 0 || columns == 0) return 0;

    const auto open_ext =
        static_cast<std::uint8_t>(std::min<Score>(gap.open + gap.extend, 255));
    const auto ext =
        static_cast<std::uint8_t>(std::min<Score>(gap.extend, 255));
    const V vGapOE = V::splat(open_ext);
    const V vGapE = V::splat(ext);
    const V vBias = V::splat(static_cast<std::uint8_t>(p.bias));

    const std::size_t tiles = interseq_tile_count(m);
    const std::size_t rows = (m + tiles - 1) / tiles;
    const std::size_t bytes = std::min(rows, m) * sizeof(V);
    const ScanScratch::KernelBuffers bufs = scratch.kernel_buffers(bytes);
    V* __restrict h = static_cast<V*>(bufs.h_load);
    V* __restrict e = static_cast<V*>(bufs.e);
    const InterseqColumnState::Arrays carry =
        state.arrays(columns * sizeof(V));
    V* __restrict crow = static_cast<V*>(carry.h);
    V* __restrict cf = static_cast<V*>(carry.f);
    V vMax = V::zero();

    for (std::size_t r0 = 0; r0 < m; r0 += rows) {
        const std::size_t tm = std::min(rows, m - r0);
        const std::size_t tbytes = tm * sizeof(V);
        std::memset(h, 0, tbytes);
        std::memset(e, 0, tbytes);
        const bool first = r0 == 0;
        // H(r0-1, j-1): the diagonal feeding the tile's top row. Starts
        // at the 0 boundary column and then trails crow by one column.
        V carryDiag = V::zero();
        for (std::size_t j = 0; j < columns; ++j) {
            const V dbv = V::load(cols + j * static_cast<std::size_t>(W));
            V vF = first ? V::zero() : cf[j];
            V vDiag = carryDiag;
            carryDiag = first ? V::zero() : crow[j];
            for (std::size_t i = 0; i < tm; ++i) {
                V vH = subs(adds(vDiag, lookup32(p.row(r0 + i), dbv)), vBias);
                vDiag = h[i];
                vH = vmax(vH, e[i]);
                vH = vmax(vH, vF);
                vMax = vmax(vMax, vH);
                h[i] = vH;
                const V vHgap = subs(vH, vGapOE);
                e[i] = vmax(subs(e[i], vGapE), vHgap);
                vF = vmax(subs(vF, vGapE), vHgap);
            }
            crow[j] = h[tm - 1];
            cf[j] = vF;
        }
    }

    vMax.store(lane_best);
    std::uint64_t overflow = 0;
    for (int l = 0; l < W; ++l) {
        if (static_cast<Score>(lane_best[l]) + p.bias >= 255) {
            overflow |= std::uint64_t{1} << l;
        }
    }
    return overflow;
}

/// Query-tiled 16-bit kernel: interseq_i16 with the tiling scheme of
/// interseq_u8_tiled. The carried column state is held as [lo, hi] i16
/// half-vector pairs at crow/cf[2j, 2j+1] — the same widening the
/// untiled i16 kernel applies to its row arrays, so carried values
/// cross the 8 -> 16 escalation boundary without narrowing. kLoOnly as
/// in interseq_i16.
template <class V, bool kLoOnly = false>
SWH_HOT_PATH std::uint64_t interseq_i16_tiled(const InterseqProfile& p, const Code* cols,
                                 std::size_t columns, GapPenalty gap,
                                 ScanScratch& scratch,
                                 InterseqColumnState& state,
                                 std::int16_t* lane_best) {
    constexpr int W = V::kLanes;
    using VW = decltype(widen_lo(V::zero()));
    for (int l = 0; l < W; ++l) lane_best[l] = 0;
    const std::size_t m = p.query_len;
    if (m == 0 || columns == 0) return 0;

    const VW vGapOE = VW::splat(static_cast<std::int16_t>(
        std::min<Score>(gap.open + gap.extend, 32767)));
    const VW vGapE =
        VW::splat(static_cast<std::int16_t>(std::min<Score>(gap.extend, 32767)));
    const VW vBias = VW::splat(static_cast<std::int16_t>(p.bias));
    const VW vZero = VW::zero();

    const std::size_t tiles = interseq_tile_count(m);
    const std::size_t rows = (m + tiles - 1) / tiles;
    const std::size_t bytes = 2 * std::min(rows, m) * sizeof(VW);
    const ScanScratch::KernelBuffers bufs = scratch.kernel_buffers(bytes);
    VW* __restrict h = static_cast<VW*>(bufs.h_load);
    VW* __restrict e = static_cast<VW*>(bufs.e);
    const InterseqColumnState::Arrays carry =
        state.arrays(2 * columns * sizeof(VW));
    VW* __restrict crow = static_cast<VW*>(carry.h);
    VW* __restrict cf = static_cast<VW*>(carry.f);
    VW vMaxLo = VW::zero();
    VW vMaxHi = VW::zero();

    for (std::size_t r0 = 0; r0 < m; r0 += rows) {
        const std::size_t tm = std::min(rows, m - r0);
        const std::size_t tbytes = 2 * tm * sizeof(VW);
        std::memset(h, 0, tbytes);
        std::memset(e, 0, tbytes);
        const bool first = r0 == 0;
        VW carryDiagLo = VW::zero();
        VW carryDiagHi = VW::zero();
        for (std::size_t j = 0; j < columns; ++j) {
            const V dbv = V::load(cols + j * static_cast<std::size_t>(W));
            VW vFLo = first ? VW::zero() : cf[2 * j];
            VW vFHi = (kLoOnly || first) ? VW::zero() : cf[2 * j + 1];
            VW vDiagLo = carryDiagLo;
            VW vDiagHi = carryDiagHi;
            carryDiagLo = first ? VW::zero() : crow[2 * j];
            carryDiagHi = (kLoOnly || first) ? VW::zero() : crow[2 * j + 1];
            for (std::size_t i = 0; i < tm; ++i) {
                const V s8 = lookup32(p.row(r0 + i), dbv);
                const VW sLo = subs(widen_lo(s8), vBias);

                VW vH = adds(vDiagLo, sLo);
                vDiagLo = h[2 * i];
                vH = vmax(vH, e[2 * i]);
                vH = vmax(vH, vFLo);
                vH = vmax(vH, vZero);
                vMaxLo = vmax(vMaxLo, vH);
                h[2 * i] = vH;
                VW vHgap = subs(vH, vGapOE);
                e[2 * i] = vmax(subs(e[2 * i], vGapE), vHgap);
                vFLo = vmax(subs(vFLo, vGapE), vHgap);

                if constexpr (!kLoOnly) {
                    const VW sHi = subs(widen_hi(s8), vBias);
                    vH = adds(vDiagHi, sHi);
                    vDiagHi = h[2 * i + 1];
                    vH = vmax(vH, e[2 * i + 1]);
                    vH = vmax(vH, vFHi);
                    vH = vmax(vH, vZero);
                    vMaxHi = vmax(vMaxHi, vH);
                    h[2 * i + 1] = vH;
                    vHgap = subs(vH, vGapOE);
                    e[2 * i + 1] = vmax(subs(e[2 * i + 1], vGapE), vHgap);
                    vFHi = vmax(subs(vFHi, vGapE), vHgap);
                }
            }
            crow[2 * j] = h[2 * (tm - 1)];
            cf[2 * j] = vFLo;
            if constexpr (!kLoOnly) {
                crow[2 * j + 1] = h[2 * (tm - 1) + 1];
                cf[2 * j + 1] = vFHi;
            }
        }
    }

    vMaxLo.store(lane_best);
    vMaxHi.store(lane_best + W / 2);
    std::uint64_t overflow = 0;
    for (int l = 0; l < W; ++l) {
        if (static_cast<Score>(lane_best[l]) + p.max_raw >= 32767) {
            overflow |= std::uint64_t{1} << l;
        }
    }
    return overflow;
}

}  // namespace swh::align::detail

#pragma once

// Ungapped gap-slack prefilter kernels — stage 1 of the three-stage scan
// funnel (see align/db_scan.hpp).
//
// The kernels compute, per subject lane, the best score over CHAINS of
// ungapped diagonal segments where linking two segments is charged one
// gap open and restarts may only source from strictly earlier query
// rows (row-monotone):
//
//   T(i,j) = max(0, max(T(i-1,j-1), A(i,j-1) - open) + s(q_i, d_j))
//   A(i,j) = max over i' < i, j' <= j of T(i', j')
//
// A(i, .) is a plain prefix maximum down the rows, so the kernels keep
// exactly two query-length DP rows (H and A) and no E/F state, and run
// at roughly 60% of the cost of the full inter-sequence Smith-Waterman
// kernel on the same cohort geometry and transposed query profile
// (align/interseq.hpp).
//
// Soundness: take any gapped local alignment and its aligned pairs in
// order. Consecutive pairs (i',j') -> (i,j) are either diagonal
// neighbours (the T(i-1,j-1) + s transition) or separated by gap runs
// with i' < i and j' < j whose true affine cost is at least one gap
// open — and the restart transition charges exactly open while sourcing
// from A(i,j-1), which contains T(i',j') because i' <= i-1 and
// j' <= j-1. So every gapped alignment path maps cell-by-cell to a
// T-path of at least its score:
//
//   gapped(Q,S) <= T*(Q,S)   (the kernel's per-lane maximum).
//
// The row-monotonicity is what keeps the bound tight: without it a
// chain could re-align the query's best segment to many subject
// positions, inflating the bound linearly in subject length. Forcing
// strictly increasing rows caps the total matched weight by what
// distinct query rows can contribute, which keeps random-background
// bounds within a small factor of the exact gapped score while true
// homologs stay high (their exact score is itself a witness chain).
//
// The kernels take a query row range so callers can tile long queries:
// splitting any chain (or gapped alignment) path at a row boundary
// yields one legal sub-path per tile, and summing the tiles' bounds
// simply forgoes charging the link between them — so
//
//   gapped(Q,S) <= sum over row tiles R of T*(Q[R], S)
//
// stays a sound upper bound while each tile's DP state fits in L1 and
// its per-tile maximum stays inside the 8-bit range (the funnel uses
// ~256-row tiles, see db_scan.hpp kFilterChunkRows).
//
// A subject whose bound falls strictly below the running k-th best
// exact score therefore provably cannot enter the final top-k, and the
// funnel may skip its exact alignment without changing the result.
// See DESIGN.md "Prefilter funnel" for the full argument.

#include <cstdint>
#include <span>

#include "align/interseq.hpp"
#include "align/score_matrix.hpp"
#include "align/sequence.hpp"
#include "simd/arch.hpp"
#include "util/annotations.hpp"

namespace swh::align {

class ScanScratch;

/// Exact (int arithmetic, no saturation) scalar reference of the
/// gap-slack chain bound computed by the interseq kernels below. Used
/// by tests and the funnel soundness suite.
Score sw_ungapped_scalar(std::span<const Code> a, std::span<const Code> b,
                         const ScoreMatrix& matrix, GapPenalty gap);

/// 8-bit gap-slack prefilter kernel over one cohort — same geometry and
/// profile as sw_interseq_u8 (align/interseq.hpp): `cols` points at
/// `columns` column-major residue columns of `lanes_u8(isa)` lanes.
/// Writes each lane's chain bound (unbiased) over query rows
/// [row_begin, min(row_end, query_len)) to lane_best[0..lanes) and
/// returns the saturating-overflow lane mask (bit l set = lane l may
/// have saturated, `score + bias >= 255` — those lanes carry no
/// trustworthy bound and must be treated as survivors or re-bounded at
/// 16 bits). Residues must be pre-validated.
SWH_HOT_PATH std::uint64_t sw_ungapped_interseq_u8(const InterseqProfile& profile,
                                      const Code* cols, std::size_t columns,
                                      GapPenalty gap, simd::IsaLevel isa,
                                      ScanScratch& scratch,
                                      std::uint8_t* lane_best,
                                      std::size_t row_begin = 0,
                                      std::size_t row_end = SIZE_MAX);

/// 16-bit companion over the same u8-width cohort (each lane widened to
/// two i16 half-vectors, as in sw_interseq_i16); overflow mask uses the
/// `score + max_raw >= 32767` bound.
SWH_HOT_PATH std::uint64_t sw_ungapped_interseq_i16(const InterseqProfile& profile,
                                       const Code* cols, std::size_t columns,
                                       GapPenalty gap, simd::IsaLevel isa,
                                       ScanScratch& scratch,
                                       std::int16_t* lane_best,
                                       std::size_t row_begin = 0,
                                       std::size_t row_end = SIZE_MAX);

/// Survivor compare: bit l set iff lane_best[l] >= floor, computed with
/// the ISA's lane-compare primitive (simd ge_mask). Only the low
/// lanes_u8(isa) bits are meaningful.
SWH_HOT_PATH std::uint64_t lanes_at_least(const std::uint8_t* lane_best, std::uint8_t floor,
                             simd::IsaLevel isa);

}  // namespace swh::align

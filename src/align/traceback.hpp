#pragma once

#include <span>

#include "align/alignment.hpp"
#include "align/score_matrix.hpp"

namespace swh::align {

/// Quadratic-space aligners with full traceback — the paper's "phase 2"
/// (SS II-A.2). Memory is O(|s| * |t|) bytes for the direction matrix, so
/// these are meant for moderate sequence pairs; sw_align_affine_lowmem
/// (local_align.hpp) handles long pairs by shrinking the rectangle first.

/// Local alignment, linear gap model (Eq. 1). The traceback starts at the
/// highest H cell (ties: smallest i, then j) and follows arrows until a
/// zero cell, exactly as the paper describes under Fig. 2.
Alignment sw_align_linear(std::span<const Code> s, std::span<const Code> t,
                          const ScoreMatrix& matrix, Score gap);

/// Local alignment, affine gaps (Gotoh H/E/F matrices).
Alignment sw_align_affine(std::span<const Code> s, std::span<const Code> t,
                          const ScoreMatrix& matrix, GapPenalty gap);

/// Global (Needleman-Wunsch) alignment, linear gap model — used by the
/// paper's Fig. 1 example (ma=+1, mi=-1, g=-2).
Alignment nw_align_linear(std::span<const Code> s, std::span<const Code> t,
                          const ScoreMatrix& matrix, Score gap);

/// Global alignment with affine gaps.
Alignment nw_align_affine(std::span<const Code> s, std::span<const Code> t,
                          const ScoreMatrix& matrix, GapPenalty gap);

}  // namespace swh::align

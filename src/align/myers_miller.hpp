#pragma once

#include <span>

#include "align/alignment.hpp"

namespace swh::align {

/// Global affine-gap alignment in O(min(|s|, |t|)) space and O(|s||t|)
/// time — the Myers-Miller (1988) divide-and-conquer refinement of
/// Hirschberg's algorithm, adapted to affine gaps via boundary gap-open
/// bookkeeping. Produces the same score as nw_align_affine (which needs
/// a quadratic direction matrix) but scales to chromosome-length
/// sequences; the related work the paper builds on ([4], CUDAlign) uses
/// the same technique on GPUs.
Alignment nw_align_affine_linear(std::span<const Code> s,
                                 std::span<const Code> t,
                                 const ScoreMatrix& matrix, GapPenalty gap);

}  // namespace swh::align

#pragma once

#include <span>

#include "align/alignment.hpp"

namespace swh::align {

/// Memory-frugal local alignment for long sequence pairs.
///
/// Strategy (the standard locate-then-trace refinement): a forward O(n)-
/// space Gotoh pass finds the best score and an end cell; a second pass on
/// the *reversed* prefix rectangle finds a matching start cell; the full
/// traceback then runs only on the [start..end] rectangle, which is the
/// size of the alignment footprint rather than |s| x |t|. The result is an
/// optimal local alignment (possibly a different co-optimal one than the
/// full-matrix traceback would pick).
///
/// `max_rect_cells` caps the final rectangle; exceeding it throws
/// ContractError rather than silently allocating gigabytes.
Alignment sw_align_affine_lowmem(std::span<const Code> s,
                                 std::span<const Code> t,
                                 const ScoreMatrix& matrix, GapPenalty gap,
                                 std::size_t max_rect_cells = std::size_t{1}
                                                              << 28);

}  // namespace swh::align

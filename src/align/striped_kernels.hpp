#pragma once

// Templated bodies of the striped Smith-Waterman kernels (Farrar 2007,
// with the exactness fix of also refreshing E during the lazy-F loop).
// Instantiated per SIMD backend in striped.cpp; exposed in a header so
// tests can pin a specific backend.
//
// The kernels draw their H/E column buffers from a caller-owned
// ScanScratch, so a database scan reuses one warm allocation instead of
// heap-allocating three vectors per subject. `kChecked` controls the
// per-residue alphabet check: it stays on for untrusted input (seed
// behaviour) and is compiled out for residues validated once at pack
// time (db::PackedDatabase).

#include <cstring>
#include <span>

#include "align/striped.hpp"
#include "util/annotations.hpp"
#include "util/error.hpp"

namespace swh::align::detail {

/// 8-bit unsigned kernel. V must model the vector interface documented
/// in simd/vec_scalar.hpp with lane_type uint8_t.
template <class V, bool kChecked = true>
SWH_HOT_PATH StripedResult striped_u8(const Profile8& p,
                                      std::span<const Code> db, GapPenalty gap,
                                      ScanScratch& scratch) {
    SWH_REQUIRE(p.lanes == V::kLanes, "profile built for a different width");
    StripedResult r;
    if (p.query_len == 0 || db.empty()) return r;

    const std::size_t seg = p.seg_len;
    const auto open_ext =
        static_cast<std::uint8_t>(std::min<Score>(gap.open + gap.extend, 255));
    const auto ext =
        static_cast<std::uint8_t>(std::min<Score>(gap.extend, 255));
    const V vGapOE = V::splat(open_ext);
    const V vGapE = V::splat(ext);
    const V vBias = V::splat(static_cast<std::uint8_t>(p.bias));

    const std::size_t bytes = seg * sizeof(V);
    const ScanScratch::KernelBuffers bufs = scratch.kernel_buffers(bytes);
    // The three buffers are disjoint slices of the scratch; __restrict
    // lets the inner loop keep H/E/F in registers across the stores.
    V* __restrict h_load = static_cast<V*>(bufs.h_load);
    V* __restrict h_store = static_cast<V*>(bufs.h_store);
    V* __restrict e = static_cast<V*>(bufs.e);
    // h_store is fully written each column before it is read.
    std::memset(h_load, 0, bytes);
    std::memset(e, 0, bytes);
    V vMax = V::zero();

    for (const Code c : db) {
        if constexpr (kChecked) {
            SWH_REQUIRE(c < p.symbols, "db residue outside profile alphabet");
        }
        const std::uint8_t* __restrict prof = p.row(c);
        V vF = V::zero();
        // H(i-1) of the last segment, rotated: lane l receives the value
        // of lane l-1, and a 0 boundary enters lane 0.
        V vH = h_load[seg - 1].shl_lane();
        for (std::size_t i = 0; i < seg; ++i) {
            vH = subs(adds(vH, V::load(prof + i * V::kLanes)), vBias);
            vH = vmax(vH, e[i]);
            vH = vmax(vH, vF);
            vMax = vmax(vMax, vH);
            h_store[i] = vH;
            const V vHgap = subs(vH, vGapOE);
            e[i] = vmax(subs(e[i], vGapE), vHgap);
            vF = vmax(subs(vF, vGapE), vHgap);
            vH = h_load[i];
        }
        // Lazy-F: propagate vertical gaps that cross segment boundaries.
        // The exit test runs once per 4-step chunk rather than per step:
        // updates past Farrar's exit point only vmax already-dominated F
        // values (no-ops), and halving the any_gt/branch traffic is a
        // measurable win on scan workloads.
        vF = vF.shl_lane();
        std::size_t j = 0;
        while (any_gt(vF, subs(h_store[j], vGapOE))) {
            const std::size_t end = std::min(j + 4, seg);
            for (; j < end; ++j) {
                h_store[j] = vmax(h_store[j], vF);
                // Keep E exact w.r.t. the corrected H (Farrar's original
                // kernel skips this; it can underestimate E after an F
                // fix).
                e[j] = vmax(e[j], subs(h_store[j], vGapOE));
                vF = subs(vF, vGapE);
            }
            if (j >= seg) {
                j = 0;
                vF = vF.shl_lane();
            }
        }
        V* __restrict tmp = h_load;
        h_load = h_store;
        h_store = tmp;
    }

    const std::uint8_t m = vMax.hmax();
    r.score = m;
    // Saturation is possible once H + (matrix value + bias) can clip 255.
    r.overflow = static_cast<Score>(m) + p.bias >= 255;
    return r;
}

/// Register-blocked 8-bit kernel for compile-time segment counts. With
/// kSeg known, the H and E columns live entirely in vector registers —
/// no loads or stores of DP state in the inner loop. The lazy-F pass is
/// restructured as unconditional full-segment sweeps; see the comment at
/// the sweep for why results stay bit-identical.
template <class V, std::size_t kSeg, bool kChecked>
SWH_HOT_PATH StripedResult striped_u8_fixed(const Profile8& p,
                                            std::span<const Code> db,
                                            GapPenalty gap) {
    StripedResult r;
    const auto open_ext =
        static_cast<std::uint8_t>(std::min<Score>(gap.open + gap.extend, 255));
    const auto ext =
        static_cast<std::uint8_t>(std::min<Score>(gap.extend, 255));
    const V vGapOE = V::splat(open_ext);
    const V vGapE = V::splat(ext);
    const V vBias = V::splat(static_cast<std::uint8_t>(p.bias));

    V h[kSeg], e[kSeg];
#pragma GCC unroll 16
    for (std::size_t i = 0; i < kSeg; ++i) {
        h[i] = V::zero();
        e[i] = V::zero();
    }
    V vMax = V::zero();

    for (const Code c : db) {
        if constexpr (kChecked) {
            SWH_REQUIRE(c < p.symbols, "db residue outside profile alphabet");
        }
        const std::uint8_t* __restrict prof = p.row(c);
        V vF = V::zero();
        V vH = h[kSeg - 1].shl_lane();
#pragma GCC unroll 16
        for (std::size_t i = 0; i < kSeg; ++i) {
            vH = subs(adds(vH, V::load(prof + i * V::kLanes)), vBias);
            vH = vmax(vH, e[i]);
            vH = vmax(vH, vF);
            vMax = vmax(vMax, vH);
            const V old = h[i];  // previous column's H, input to step i+1
            h[i] = vH;
            const V vHgap = subs(vH, vGapOE);
            e[i] = vmax(subs(e[i], vGapE), vHgap);
            vF = vmax(subs(vF, vGapE), vHgap);
            vH = old;
        }
        // Lazy-F as branch-free half-segment sweeps: dynamic indexing
        // would force the state back to memory, and a per-step early
        // exit mispredicts. Sweeping past Farrar's exit point only
        // applies vmax with already-dominated F values, so results stay
        // bit-identical to the generic kernel; the midpoint check (for
        // wider segments) prunes the second half-sweep in the common
        // case where F dies early.
        constexpr std::size_t kHalf = kSeg >= 6 ? kSeg / 2 : kSeg;
        vF = vF.shl_lane();
        while (any_gt(vF, subs(h[0], vGapOE))) {
#pragma GCC unroll 16
            for (std::size_t j = 0; j < kHalf; ++j) {
                h[j] = vmax(h[j], vF);
                e[j] = vmax(e[j], subs(h[j], vGapOE));
                vF = subs(vF, vGapE);
            }
            if constexpr (kHalf < kSeg) {
                if (!any_gt(vF, subs(h[kHalf], vGapOE))) break;
#pragma GCC unroll 16
                for (std::size_t j = kHalf; j < kSeg; ++j) {
                    h[j] = vmax(h[j], vF);
                    e[j] = vmax(e[j], subs(h[j], vGapOE));
                    vF = subs(vF, vGapE);
                }
            }
            vF = vF.shl_lane();
        }
    }

    const std::uint8_t m = vMax.hmax();
    r.score = m;
    r.overflow = static_cast<Score>(m) + p.bias >= 255;
    return r;
}

/// Dispatches to a register-blocked instantiation when the segment count
/// is small enough for the DP state to stay in registers; falls back to
/// the scratch-backed generic kernel otherwise.
template <class V, bool kChecked = true>
SWH_HOT_PATH StripedResult striped_u8_auto(const Profile8& p,
                                           std::span<const Code> db,
                                           GapPenalty gap,
                                           ScanScratch& scratch) {
    if (p.query_len != 0 && !db.empty() && p.lanes == V::kLanes) {
        switch (p.seg_len) {
            case 1: return striped_u8_fixed<V, 1, kChecked>(p, db, gap);
            case 2: return striped_u8_fixed<V, 2, kChecked>(p, db, gap);
            case 3: return striped_u8_fixed<V, 3, kChecked>(p, db, gap);
            case 4: return striped_u8_fixed<V, 4, kChecked>(p, db, gap);
            case 5: return striped_u8_fixed<V, 5, kChecked>(p, db, gap);
            case 6: return striped_u8_fixed<V, 6, kChecked>(p, db, gap);
            case 7: return striped_u8_fixed<V, 7, kChecked>(p, db, gap);
            case 8: return striped_u8_fixed<V, 8, kChecked>(p, db, gap);
            default: break;
        }
    }
    return striped_u8<V, kChecked>(p, db, gap, scratch);
}

/// Convenience overload with per-call scratch (tests, one-off scores).
template <class V>
StripedResult striped_u8(const Profile8& p, std::span<const Code> db,
                         GapPenalty gap) {
    ScanScratch scratch;
    return striped_u8<V, true>(p, db, gap, scratch);
}

/// 16-bit signed kernel with an explicit zero clamp (signed lanes do not
/// get it for free from saturation like the unsigned kernel does).
template <class V, bool kChecked = true>
SWH_HOT_PATH StripedResult striped_i16(const Profile16& p,
                                       std::span<const Code> db,
                                       GapPenalty gap, Score matrix_max,
                                       ScanScratch& scratch) {
    SWH_REQUIRE(p.lanes == V::kLanes, "profile built for a different width");
    StripedResult r;
    if (p.query_len == 0 || db.empty()) return r;

    const std::size_t seg = p.seg_len;
    const V vGapOE = V::splat(static_cast<std::int16_t>(
        std::min<Score>(gap.open + gap.extend, 32767)));
    const V vGapE =
        V::splat(static_cast<std::int16_t>(std::min<Score>(gap.extend, 32767)));
    const V vZero = V::zero();

    const std::size_t bytes = seg * sizeof(V);
    const ScanScratch::KernelBuffers bufs = scratch.kernel_buffers(bytes);
    V* __restrict h_load = static_cast<V*>(bufs.h_load);
    V* __restrict h_store = static_cast<V*>(bufs.h_store);
    V* __restrict e = static_cast<V*>(bufs.e);
    std::memset(h_load, 0, bytes);
    std::memset(e, 0, bytes);
    V vMax = V::zero();

    for (const Code c : db) {
        if constexpr (kChecked) {
            SWH_REQUIRE(c < p.symbols, "db residue outside profile alphabet");
        }
        const std::int16_t* __restrict prof = p.row(c);
        V vF = V::zero();
        V vH = h_load[seg - 1].shl_lane();
        for (std::size_t i = 0; i < seg; ++i) {
            vH = adds(vH, V::load(prof + i * V::kLanes));
            vH = vmax(vH, e[i]);
            vH = vmax(vH, vF);
            vH = vmax(vH, vZero);  // local-alignment clamp
            vMax = vmax(vMax, vH);
            h_store[i] = vH;
            const V vHgap = subs(vH, vGapOE);
            e[i] = vmax(subs(e[i], vGapE), vHgap);
            vF = vmax(subs(vF, vGapE), vHgap);
            vH = h_load[i];
        }
        vF = vF.shl_lane();
        std::size_t j = 0;
        // Unlike the unsigned kernel, signed lanes do not bottom out at 0,
        // so compare against max(H - gapOE, 0): a non-positive F can never
        // raise a (non-negative) local-alignment H and must not keep the
        // loop alive. Chunked exit test as in the unsigned kernel.
        while (any_gt(vF, vmax(subs(h_store[j], vGapOE), vZero))) {
            const std::size_t end = std::min(j + 4, seg);
            for (; j < end; ++j) {
                h_store[j] = vmax(h_store[j], vF);
                e[j] = vmax(e[j], subs(h_store[j], vGapOE));
                vF = subs(vF, vGapE);
            }
            if (j >= seg) {
                j = 0;
                vF = vF.shl_lane();
            }
        }
        V* __restrict tmp = h_load;
        h_load = h_store;
        h_store = tmp;
    }

    const std::int16_t m = vMax.hmax();
    r.score = m;
    r.overflow = static_cast<Score>(m) + matrix_max >= 32767;
    return r;
}

/// Register-blocked 16-bit kernel; see striped_u8_fixed for the layout
/// and lazy-F sweep rationale.
template <class V, std::size_t kSeg, bool kChecked>
SWH_HOT_PATH StripedResult striped_i16_fixed(const Profile16& p,
                                             std::span<const Code> db,
                                             GapPenalty gap,
                                             Score matrix_max) {
    StripedResult r;
    const V vGapOE = V::splat(static_cast<std::int16_t>(
        std::min<Score>(gap.open + gap.extend, 32767)));
    const V vGapE =
        V::splat(static_cast<std::int16_t>(std::min<Score>(gap.extend, 32767)));
    const V vZero = V::zero();

    V h[kSeg], e[kSeg];
#pragma GCC unroll 16
    for (std::size_t i = 0; i < kSeg; ++i) {
        h[i] = V::zero();
        e[i] = V::zero();
    }
    V vMax = V::zero();

    for (const Code c : db) {
        if constexpr (kChecked) {
            SWH_REQUIRE(c < p.symbols, "db residue outside profile alphabet");
        }
        const std::int16_t* __restrict prof = p.row(c);
        V vF = V::zero();
        V vH = h[kSeg - 1].shl_lane();
#pragma GCC unroll 16
        for (std::size_t i = 0; i < kSeg; ++i) {
            vH = adds(vH, V::load(prof + i * V::kLanes));
            vH = vmax(vH, e[i]);
            vH = vmax(vH, vF);
            vH = vmax(vH, vZero);  // local-alignment clamp
            vMax = vmax(vMax, vH);
            const V old = h[i];
            h[i] = vH;
            const V vHgap = subs(vH, vGapOE);
            e[i] = vmax(subs(e[i], vGapE), vHgap);
            vF = vmax(subs(vF, vGapE), vHgap);
            vH = old;
        }
        // Lazy-F as branch-free half-segment sweeps; see the 8-bit
        // kernel. The vZero clamp in the checks mirrors the generic
        // signed kernel.
        constexpr std::size_t kHalf = kSeg >= 6 ? kSeg / 2 : kSeg;
        vF = vF.shl_lane();
        while (any_gt(vF, vmax(subs(h[0], vGapOE), vZero))) {
#pragma GCC unroll 16
            for (std::size_t j = 0; j < kHalf; ++j) {
                h[j] = vmax(h[j], vF);
                e[j] = vmax(e[j], subs(h[j], vGapOE));
                vF = subs(vF, vGapE);
            }
            if constexpr (kHalf < kSeg) {
                if (!any_gt(vF, vmax(subs(h[kHalf], vGapOE), vZero))) break;
#pragma GCC unroll 16
                for (std::size_t j = kHalf; j < kSeg; ++j) {
                    h[j] = vmax(h[j], vF);
                    e[j] = vmax(e[j], subs(h[j], vGapOE));
                    vF = subs(vF, vGapE);
                }
            }
            vF = vF.shl_lane();
        }
    }

    const std::int16_t m = vMax.hmax();
    r.score = m;
    r.overflow = static_cast<Score>(m) + matrix_max >= 32767;
    return r;
}

/// Register-blocked dispatch for the 16-bit kernel; see striped_u8_auto.
template <class V, bool kChecked = true>
SWH_HOT_PATH StripedResult striped_i16_auto(const Profile16& p,
                                            std::span<const Code> db,
                                            GapPenalty gap, Score matrix_max,
                                            ScanScratch& scratch) {
    if (p.query_len != 0 && !db.empty() && p.lanes == V::kLanes) {
        switch (p.seg_len) {
            case 1:
                return striped_i16_fixed<V, 1, kChecked>(p, db, gap,
                                                         matrix_max);
            case 2:
                return striped_i16_fixed<V, 2, kChecked>(p, db, gap,
                                                         matrix_max);
            case 3:
                return striped_i16_fixed<V, 3, kChecked>(p, db, gap,
                                                         matrix_max);
            case 4:
                return striped_i16_fixed<V, 4, kChecked>(p, db, gap,
                                                         matrix_max);
            case 5:
                return striped_i16_fixed<V, 5, kChecked>(p, db, gap,
                                                         matrix_max);
            case 6:
                return striped_i16_fixed<V, 6, kChecked>(p, db, gap,
                                                         matrix_max);
            case 7:
                return striped_i16_fixed<V, 7, kChecked>(p, db, gap,
                                                         matrix_max);
            case 8:
                return striped_i16_fixed<V, 8, kChecked>(p, db, gap,
                                                         matrix_max);
            default:
                break;
        }
    }
    return striped_i16<V, kChecked>(p, db, gap, matrix_max, scratch);
}

/// Convenience overload with per-call scratch (tests, one-off scores).
template <class V>
StripedResult striped_i16(const Profile16& p, std::span<const Code> db,
                          GapPenalty gap, Score matrix_max) {
    ScanScratch scratch;
    return striped_i16<V, true>(p, db, gap, matrix_max, scratch);
}

}  // namespace swh::align::detail

#pragma once

// Templated bodies of the striped Smith-Waterman kernels (Farrar 2007,
// with the exactness fix of also refreshing E during the lazy-F loop).
// Instantiated per SIMD backend in striped.cpp; exposed in a header so
// tests can pin a specific backend.

#include <span>
#include <vector>

#include "align/striped.hpp"
#include "util/error.hpp"

namespace swh::align::detail {

/// 8-bit unsigned kernel. V must model the vector interface documented
/// in simd/vec_scalar.hpp with lane_type uint8_t.
template <class V>
StripedResult striped_u8(const Profile8& p, std::span<const Code> db,
                         GapPenalty gap) {
    SWH_REQUIRE(p.lanes == V::kLanes, "profile built for a different width");
    StripedResult r;
    if (p.query_len == 0 || db.empty()) return r;

    const std::size_t seg = p.seg_len;
    const auto open_ext =
        static_cast<std::uint8_t>(std::min<Score>(gap.open + gap.extend, 255));
    const auto ext =
        static_cast<std::uint8_t>(std::min<Score>(gap.extend, 255));
    const V vGapOE = V::splat(open_ext);
    const V vGapE = V::splat(ext);
    const V vBias = V::splat(static_cast<std::uint8_t>(p.bias));

    std::vector<V> h_load(seg, V::zero());
    std::vector<V> h_store(seg, V::zero());
    std::vector<V> e(seg, V::zero());
    V vMax = V::zero();

    for (const Code c : db) {
        SWH_REQUIRE(c < p.symbols, "db residue outside profile alphabet");
        const std::uint8_t* prof = p.row(c);
        V vF = V::zero();
        // H(i-1) of the last segment, rotated: lane l receives the value
        // of lane l-1, and a 0 boundary enters lane 0.
        V vH = h_load[seg - 1].shl_lane();
        for (std::size_t i = 0; i < seg; ++i) {
            vH = subs(adds(vH, V::load(prof + i * V::kLanes)), vBias);
            vH = vmax(vH, e[i]);
            vH = vmax(vH, vF);
            vMax = vmax(vMax, vH);
            h_store[i] = vH;
            const V vHgap = subs(vH, vGapOE);
            e[i] = vmax(subs(e[i], vGapE), vHgap);
            vF = vmax(subs(vF, vGapE), vHgap);
            vH = h_load[i];
        }
        // Lazy-F: propagate vertical gaps that cross segment boundaries.
        vF = vF.shl_lane();
        std::size_t j = 0;
        while (any_gt(vF, subs(h_store[j], vGapOE))) {
            h_store[j] = vmax(h_store[j], vF);
            // Keep E exact w.r.t. the corrected H (Farrar's original
            // kernel skips this; it can underestimate E after an F fix).
            e[j] = vmax(e[j], subs(h_store[j], vGapOE));
            vF = subs(vF, vGapE);
            if (++j >= seg) {
                j = 0;
                vF = vF.shl_lane();
            }
        }
        std::swap(h_load, h_store);
    }

    const std::uint8_t m = vMax.hmax();
    r.score = m;
    // Saturation is possible once H + (matrix value + bias) can clip 255.
    r.overflow = static_cast<Score>(m) + p.bias >= 255;
    return r;
}

/// 16-bit signed kernel with an explicit zero clamp (signed lanes do not
/// get it for free from saturation like the unsigned kernel does).
template <class V>
StripedResult striped_i16(const Profile16& p, std::span<const Code> db,
                          GapPenalty gap, Score matrix_max) {
    SWH_REQUIRE(p.lanes == V::kLanes, "profile built for a different width");
    StripedResult r;
    if (p.query_len == 0 || db.empty()) return r;

    const std::size_t seg = p.seg_len;
    const V vGapOE = V::splat(static_cast<std::int16_t>(
        std::min<Score>(gap.open + gap.extend, 32767)));
    const V vGapE =
        V::splat(static_cast<std::int16_t>(std::min<Score>(gap.extend, 32767)));
    const V vZero = V::zero();

    std::vector<V> h_load(seg, V::zero());
    std::vector<V> h_store(seg, V::zero());
    std::vector<V> e(seg, V::zero());
    V vMax = V::zero();

    for (const Code c : db) {
        SWH_REQUIRE(c < p.symbols, "db residue outside profile alphabet");
        const std::int16_t* prof = p.row(c);
        V vF = V::zero();
        V vH = h_load[seg - 1].shl_lane();
        for (std::size_t i = 0; i < seg; ++i) {
            vH = adds(vH, V::load(prof + i * V::kLanes));
            vH = vmax(vH, e[i]);
            vH = vmax(vH, vF);
            vH = vmax(vH, vZero);  // local-alignment clamp
            vMax = vmax(vMax, vH);
            h_store[i] = vH;
            const V vHgap = subs(vH, vGapOE);
            e[i] = vmax(subs(e[i], vGapE), vHgap);
            vF = vmax(subs(vF, vGapE), vHgap);
            vH = h_load[i];
        }
        vF = vF.shl_lane();
        std::size_t j = 0;
        // Unlike the unsigned kernel, signed lanes do not bottom out at 0,
        // so compare against max(H - gapOE, 0): a non-positive F can never
        // raise a (non-negative) local-alignment H and must not keep the
        // loop alive.
        while (any_gt(vF, vmax(subs(h_store[j], vGapOE), vZero))) {
            h_store[j] = vmax(h_store[j], vF);
            e[j] = vmax(e[j], subs(h_store[j], vGapOE));
            vF = subs(vF, vGapE);
            if (++j >= seg) {
                j = 0;
                vF = vF.shl_lane();
            }
        }
        std::swap(h_load, h_store);
    }

    const std::int16_t m = vMax.hmax();
    r.score = m;
    r.overflow = static_cast<Score>(m) + matrix_max >= 32767;
    return r;
}

}  // namespace swh::align::detail

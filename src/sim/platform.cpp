#include "sim/platform.hpp"

namespace swh::sim {

PeModelSpec sse_core_pe(std::string label,
                        const engines::SseCoreModel& model) {
    PeModelSpec pe;
    pe.label = std::move(label);
    pe.kind = core::PeKind::SseCore;
    pe.peak_gcups = model.gcups;
    pe.half_saturation_residues = 0.0;
    pe.task_overhead_s = model.task_overhead_s;
    return pe;
}

PeModelSpec gpu_pe(std::string label, const engines::GpuDeviceModel& model) {
    PeModelSpec pe;
    pe.label = std::move(label);
    pe.kind = core::PeKind::Gpu;
    pe.peak_gcups = model.peak_gcups;
    pe.half_saturation_residues = model.half_saturation_residues;
    pe.task_overhead_s = model.task_overhead_s;
    return pe;
}

PeModelSpec fpga_pe(std::string label, const engines::FpgaDeviceModel& model) {
    PeModelSpec pe;
    pe.label = std::move(label);
    pe.kind = core::PeKind::Fpga;
    pe.peak_gcups = model.gcups;
    pe.half_saturation_residues = 0.0;
    pe.task_overhead_s = model.task_overhead_s;
    return pe;
}

}  // namespace swh::sim

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "engines/device_model.hpp"

namespace swh::sim {

/// Timing model of one processing element in the simulated platform.
/// rate(R) = peak_gcups * saturation(R) * load_factor, with the same
/// occupancy-saturation curve as engines::GpuDeviceModel when
/// half_saturation_residues > 0 (0 = flat rate, as for SSE cores).
struct PeModelSpec {
    std::string label;
    core::PeKind kind = core::PeKind::SseCore;
    double peak_gcups = 2.0;
    double half_saturation_residues = 0.0;
    double task_overhead_s = 0.0;

    double effective_gcups(std::uint64_t db_residues) const {
        if (half_saturation_residues <= 0.0) return peak_gcups;
        const double r = static_cast<double>(db_residues);
        return peak_gcups * r / (r + half_saturation_residues);
    }
};

/// The paper's PEs, calibrated per DESIGN.md.
PeModelSpec sse_core_pe(std::string label,
                        const engines::SseCoreModel& model = {});
PeModelSpec gpu_pe(std::string label, const engines::GpuDeviceModel& model = {});
PeModelSpec fpga_pe(std::string label,
                    const engines::FpgaDeviceModel& model = {});

/// A change in a PE's locally available compute (the paper's Fig. 8
/// superpi experiment): from `time` on, the PE delivers
/// `speed_factor` x its nominal rate.
struct LoadEvent {
    double time = 0.0;
    std::size_t pe_index = 0;
    double speed_factor = 1.0;
};

/// Dynamic-membership events (future-work extension).
struct LeaveEvent {
    double time = 0.0;
    std::size_t pe_index = 0;
};

struct JoinEvent {
    double time = 0.0;
    PeModelSpec pe;
};

}  // namespace swh::sim

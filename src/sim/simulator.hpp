#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/policy.hpp"
#include "core/sched_observer.hpp"
#include "core/scheduler.hpp"
#include "obs/trace.hpp"
#include "sim/platform.hpp"

namespace swh::sim {

/// A complete simulated experiment: one database (as a residue count),
/// one query workload (as lengths), a platform, and a scheduling
/// configuration. The simulator drives the *same* core::SchedulerCore as
/// the threaded runtime, in deterministic virtual time.
struct SimConfig {
    core::SchedulerOptions sched;
    /// Stateful policies can't be shared between runs, so a factory.
    std::function<std::unique_ptr<core::AllocationPolicy>()> policy =
        core::make_pss;
    double notify_period_s = 0.5;
    /// Master round-trip cost per work request: an idle PE receives its
    /// assignment this many (virtual) seconds after asking. Models the
    /// per-interaction network/master overhead that makes pure SS
    /// expensive (paper SS IV-A.1); 0 = free communication.
    double assign_latency_s = 0.0;
    std::uint64_t db_residues = 0;
    std::vector<std::size_t> query_lengths;
    std::vector<PeModelSpec> pes;
    std::vector<LoadEvent> load_events;
    std::vector<LeaveEvent> leave_events;
    std::vector<JoinEvent> join_events;
    /// Hard stop for misconfigured scenarios (virtual seconds).
    double max_time = 1e9;
    /// Optional scheduler-decision observer, attached before any slave
    /// registers and driven in virtual time — the same hook the
    /// threaded runtime wires (obs::SchedTracer / SchedEventLog /
    /// WeightLog), so a DES run yields the same balance evidence as a
    /// real one. Non-owning; must outlive simulate().
    core::SchedObserver* observer = nullptr;
};

/// One task execution on one PE, for Gantt rendering (paper Fig. 5).
struct TaskSpan {
    core::TaskId task = 0;
    std::size_t pe = 0;
    double start = 0.0;
    double end = 0.0;
    bool accepted = false;    ///< first finisher
    bool aborted = false;     ///< cancelled replica / node left
};

/// Delivered-rate sample at a notification point (paper Figs. 7-8).
struct RateSample {
    std::size_t pe = 0;
    double time = 0.0;
    double gcups = 0.0;
};

struct PeReport {
    std::string label;
    core::PeKind kind = core::PeKind::SseCore;
    std::size_t results_accepted = 0;
    std::size_t results_discarded = 0;
    std::size_t tasks_aborted = 0;
    double busy_seconds = 0.0;
    std::uint64_t cells = 0;
};

struct SimReport {
    /// Virtual time at which the last task reached Finished — the
    /// application's completion time (results are all merged then, even
    /// if losing replicas keep a PE busy longer).
    double makespan = 0.0;
    /// Virtual time at which every PE went idle.
    double all_idle_time = 0.0;
    std::uint64_t accepted_cells = 0;
    std::uint64_t computed_cells = 0;
    double gcups = 0.0;  ///< accepted_cells / makespan
    std::size_t replicas_issued = 0;
    std::size_t completions_discarded = 0;
    std::vector<PeReport> pes;
    std::vector<TaskSpan> spans;
    std::vector<RateSample> rates;
};

SimReport simulate(const SimConfig& config);

/// Renders the spans as an ASCII Gantt chart (one row per PE), like the
/// paper's Fig. 5. `time_step` is the width of one character cell.
std::string render_gantt(const SimReport& report,
                         const std::vector<PeModelSpec>& pes,
                         double time_step);

/// Converts a simulator report into an obs::Trace on virtual
/// timestamps: one lane per PE carrying its task spans plus Progress
/// instants from the rate samples, optionally preceded by a master
/// lane (e.g. an obs::SchedEventLog's) carrying the scheduler's
/// decisions — the exact Trace shape a drained TraceRecorder produces,
/// so a simulated run feeds the same exporters *and* the same
/// obs::analyze_balance as a traced real run.
obs::Trace to_trace(const SimReport& report,
                    const std::vector<PeModelSpec>& pes,
                    obs::TraceLaneData master_lane = {});

}  // namespace swh::sim

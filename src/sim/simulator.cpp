#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>
#include <set>
#include <sstream>

#include "core/results.hpp"
#include "obs/gantt.hpp"
#include "util/check.hpp"
#include "util/error.hpp"
#include "util/str.hpp"

namespace swh::sim {

namespace {

enum class EventKind : std::uint8_t {
    TaskFinish,
    Notify,
    Load,
    Leave,
    Join,
    StartWork,  ///< delayed assignment arrival (assign_latency_s)
};

struct Event {
    double time = 0.0;
    std::uint64_t seq = 0;  ///< insertion order; breaks time ties
    EventKind kind = EventKind::TaskFinish;
    std::size_t pe = 0;
    std::uint64_t gen = 0;      ///< TaskFinish validity generation
    double factor = 1.0;        ///< Load
    std::size_t join_idx = 0;   ///< Join
};

struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
        if (a.time != b.time) return a.time > b.time;
        return a.seq > b.seq;
    }
};

struct PeState {
    PeModelSpec spec;
    bool registered = false;
    bool left = false;
    double load_factor = 1.0;

    std::deque<core::TaskId> queue;  ///< assigned, not yet started
    bool busy = false;
    core::TaskId current = 0;
    double overhead_remaining = 0.0;
    double cells_remaining = 0.0;
    double current_start = 0.0;
    double last_advance = 0.0;
    std::uint64_t gen = 0;  ///< bumped whenever the finish time changes

    double cells_since_notify = 0.0;
    double last_notify = 0.0;
    bool notify_scheduled = false;
    bool starved = false;

    PeReport report;
};

class Simulation {
public:
    explicit Simulation(const SimConfig& config)
        : config_(config),
          sched_(core::make_tasks_from_lengths(config.query_lengths,
                                               config.db_residues),
                 config.policy(), config.sched) {
        // Attach before run() registers the platform so the observer
        // sees the registrations too (mirrors HybridRuntime's wiring).
        if (config_.observer != nullptr) {
            sched_.set_observer(config_.observer);
        }
        SWH_REQUIRE(config_.db_residues > 0, "db_residues must be positive");
        SWH_REQUIRE(!config_.query_lengths.empty(), "no queries");
        SWH_REQUIRE(!config_.pes.empty() || !config_.join_events.empty(),
                    "platform has no PEs");
        SWH_REQUIRE(config_.notify_period_s > 0.0,
                    "notify period must be positive");
    }

    SimReport run();

private:
    double speed(const PeState& pe) const {
        return pe.spec.effective_gcups(config_.db_residues) * 1e9 *
               pe.load_factor;
    }

    void push(Event e) {
        e.seq = next_seq_++;
        heap_.push(e);
    }

    /// Applies elapsed virtual time to a PE's running task.
    void advance(std::size_t i, double now) {
        PeState& pe = pes_[i];
        double dt = now - pe.last_advance;
        pe.last_advance = now;
        if (!pe.busy || dt <= 0.0) return;
        pe.report.busy_seconds += dt;
        const double o = std::min(pe.overhead_remaining, dt);
        pe.overhead_remaining -= o;
        dt -= o;
        const double done = dt * speed(pe);
        const double counted = std::min(done, pe.cells_remaining);
        pe.cells_remaining -= counted;
        pe.report.cells += static_cast<std::uint64_t>(counted);
        computed_cells_ += static_cast<std::uint64_t>(counted);
        pe.cells_since_notify += counted;
    }

    void schedule_finish(std::size_t i, double now) {
        PeState& pe = pes_[i];
        SWH_REQUIRE(pe.busy, "scheduling finish on an idle PE");
        const double s = speed(pe);
        SWH_REQUIRE(s > 0.0, "PE speed must be positive");
        const double when =
            now + pe.overhead_remaining + pe.cells_remaining / s;
        ++pe.gen;
        push(Event{when, 0, EventKind::TaskFinish, i, pe.gen, 1.0, 0});
    }

    void ensure_notify(std::size_t i, double now) {
        PeState& pe = pes_[i];
        if (pe.notify_scheduled) return;
        pe.notify_scheduled = true;
        pe.last_notify = now;
        pe.cells_since_notify = 0.0;
        push(Event{now + config_.notify_period_s, 0, EventKind::Notify, i, 0,
                   1.0, 0});
    }

    void start_next(std::size_t i, double now) {
        PeState& pe = pes_[i];
        if (pe.queue.empty()) {
            pe.busy = false;
            return;
        }
        pe.current = pe.queue.front();
        pe.queue.pop_front();
        pe.busy = true;
        pe.overhead_remaining = pe.spec.task_overhead_s;
        pe.cells_remaining =
            static_cast<double>(sched_.task(pe.current).cells);
        pe.current_start = now;
        pe.last_advance = now;
        schedule_finish(i, now);
        ensure_notify(i, now);
    }

    void request_work(std::size_t i, double now) {
        PeState& pe = pes_[i];
        if (pe.left || !pe.registered || pe.busy) return;
        const std::vector<core::TaskId> assigned =
            sched_.on_work_request(static_cast<core::PeId>(i), now);
        if (assigned.empty()) {
            if (!sched_.all_done()) pe.starved = true;
            return;
        }
        pe.starved = false;
        for (const core::TaskId t : assigned) pe.queue.push_back(t);
        if (config_.assign_latency_s > 0.0) {
            // The reply is in flight; the PE idles until it lands.
            push(Event{now + config_.assign_latency_s, 0,
                       EventKind::StartWork, i, 0, 1.0, 0});
        } else {
            start_next(i, now);
        }
    }

    void retry_starved(double now) {
        for (std::size_t i = 0; i < pes_.size(); ++i) {
            if (pes_[i].starved && !pes_[i].left && !pes_[i].busy) {
                pes_[i].starved = false;
                request_work(i, now);
            }
        }
    }

    /// Aborts the PE's current task (cancelled replica or node leave).
    /// The scheduler-side release is the caller's responsibility.
    void abort_current(std::size_t i, double now) {
        PeState& pe = pes_[i];
        if (!pe.busy) return;
        advance(i, now);
        spans_.push_back(TaskSpan{pe.current, i, pe.current_start, now, false,
                                  true});
        ++pe.report.tasks_aborted;
        pe.busy = false;
        ++pe.gen;  // invalidate the scheduled finish
    }

    void handle_finish(const Event& ev) {
        PeState& pe = pes_[ev.pe];
        if (!pe.busy || ev.gen != pe.gen) return;  // stale
        const double now = ev.time;
        advance(ev.pe, now);
        pe.cells_remaining = 0.0;
        const core::TaskId done = pe.current;

        const core::SchedulerCore::CompletionResult cr =
            sched_.on_task_complete(static_cast<core::PeId>(ev.pe), done,
                                    now);
        spans_.push_back(
            TaskSpan{done, ev.pe, pe.current_start, now, cr.accepted, false});
        if (cr.accepted) {
            accepted_cells_ += sched_.task(done).cells;
            ++pe.report.results_accepted;
            if (sched_.all_done()) makespan_ = now;
        } else {
            ++pe.report.results_discarded;
        }
        pe.busy = false;

        for (const core::PeId loser : cr.cancelled) {
            PeState& lp = pes_[loser];
            std::erase(lp.queue, done);
            if (lp.busy && lp.current == done) {
                abort_current(loser, now);
                if (!lp.queue.empty()) {
                    start_next(loser, now);
                } else {
                    request_work(loser, now);
                }
            }
        }

        if (!pe.queue.empty()) {
            start_next(ev.pe, now);
        } else {
            request_work(ev.pe, now);
        }
        retry_starved(now);
    }

    void handle_notify(const Event& ev) {
        PeState& pe = pes_[ev.pe];
        pe.notify_scheduled = false;
        if (pe.left) return;
        const double now = ev.time;
        advance(ev.pe, now);
        if (!pe.busy) return;  // went idle; next start re-arms notify
        const double elapsed = now - pe.last_notify;
        if (elapsed > 0.0) {
            const double rate = pe.cells_since_notify / elapsed;
            sched_.on_progress(static_cast<core::PeId>(ev.pe), now, rate);
            rates_.push_back(RateSample{ev.pe, now, rate / 1e9});
        }
        pe.cells_since_notify = 0.0;
        pe.last_notify = now;
        pe.notify_scheduled = true;
        push(Event{now + config_.notify_period_s, 0, EventKind::Notify,
                   ev.pe, 0, 1.0, 0});
    }

    void handle_load(const Event& ev) {
        PeState& pe = pes_[ev.pe];
        advance(ev.pe, ev.time);
        pe.load_factor = ev.factor;
        SWH_REQUIRE(pe.load_factor > 0.0,
                    "load factor must stay positive (use Leave to stop a PE)");
        if (pe.busy) schedule_finish(ev.pe, ev.time);
    }

    void handle_leave(const Event& ev) {
        PeState& pe = pes_[ev.pe];
        if (pe.left || !pe.registered) return;
        const double now = ev.time;
        sched_.deregister_slave(static_cast<core::PeId>(ev.pe), now);
        abort_current(ev.pe, now);
        pe.queue.clear();
        pe.left = true;
        pe.starved = false;
        retry_starved(now);
    }

    void handle_join(const Event& ev) {
        const std::size_t i = pes_.size();
        pes_.push_back(PeState{});
        pes_.back().spec = config_.join_events[ev.join_idx].pe;
        pes_.back().report.label = pes_.back().spec.label;
        pes_.back().report.kind = pes_.back().spec.kind;
        pes_.back().registered = true;
        pes_.back().last_advance = ev.time;
        sched_.register_slave(static_cast<core::PeId>(i),
                              pes_.back().spec.kind);
        request_work(i, ev.time);
    }

    const SimConfig& config_;
    core::SchedulerCore sched_;
    std::priority_queue<Event, std::vector<Event>, EventLater> heap_;
    std::uint64_t next_seq_ = 0;
    std::vector<PeState> pes_;
    std::vector<TaskSpan> spans_;
    std::vector<RateSample> rates_;
    std::uint64_t accepted_cells_ = 0;
    std::uint64_t computed_cells_ = 0;
    double makespan_ = 0.0;
};

SimReport Simulation::run() {
    // Static platform members register at t = 0.
    pes_.reserve(config_.pes.size() + config_.join_events.size());
    for (const PeModelSpec& spec : config_.pes) {
        pes_.push_back(PeState{});
        pes_.back().spec = spec;
        pes_.back().report.label = spec.label;
        pes_.back().report.kind = spec.kind;
        pes_.back().registered = true;
        sched_.register_slave(static_cast<core::PeId>(pes_.size() - 1),
                              spec.kind);
    }
    for (const LoadEvent& e : config_.load_events) {
        SWH_REQUIRE(e.pe_index < config_.pes.size(),
                    "load event targets unknown PE");
        push(Event{e.time, 0, EventKind::Load, e.pe_index, 0,
                   e.speed_factor, 0});
    }
    for (const LeaveEvent& e : config_.leave_events) {
        SWH_REQUIRE(e.pe_index < config_.pes.size(),
                    "leave event targets unknown PE");
        push(Event{e.time, 0, EventKind::Leave, e.pe_index, 0, 1.0, 0});
    }
    for (std::size_t j = 0; j < config_.join_events.size(); ++j) {
        push(Event{config_.join_events[j].time, 0, EventKind::Join, 0, 0,
                   1.0, j});
    }
    // First-allocation round, in PE order.
    for (std::size_t i = 0; i < pes_.size(); ++i) request_work(i, 0.0);

    double last_time = 0.0;
    while (!heap_.empty()) {
        const Event ev = heap_.top();
        heap_.pop();
        SWH_REQUIRE(ev.time <= config_.max_time,
                    "simulation exceeded max_time (misconfigured scenario?)");
        last_time = std::max(last_time, ev.time);
        switch (ev.kind) {
            case EventKind::TaskFinish:
                handle_finish(ev);
                break;
            case EventKind::Notify:
                handle_notify(ev);
                break;
            case EventKind::Load:
                handle_load(ev);
                break;
            case EventKind::Leave:
                handle_leave(ev);
                break;
            case EventKind::Join:
                handle_join(ev);
                break;
            case EventKind::StartWork: {
                PeState& pe = pes_[ev.pe];
                if (!pe.left && !pe.busy) {
                    pe.last_advance = ev.time;
                    start_next(ev.pe, ev.time);
                    // Every queued task may have been cancelled while
                    // the assignment was in flight; ask again.
                    if (!pe.busy) request_work(ev.pe, ev.time);
                }
                break;
            }
        }
    }
    SWH_REQUIRE(sched_.all_done(),
                "simulation drained its events with unfinished tasks");
    SWH_AUDIT_SWEEP(sched_.check_invariants());

    SimReport report;
    report.makespan = makespan_;
    report.all_idle_time = 0.0;
    for (const TaskSpan& s : spans_) {
        report.all_idle_time = std::max(report.all_idle_time, s.end);
    }
    report.accepted_cells = accepted_cells_;
    report.computed_cells = computed_cells_;
    report.gcups = makespan_ > 0.0
                       ? static_cast<double>(accepted_cells_) / makespan_ /
                             1e9
                       : 0.0;
    report.replicas_issued = sched_.replicas_issued();
    report.completions_discarded = sched_.completions_discarded();
    for (const PeState& pe : pes_) report.pes.push_back(pe.report);
    report.spans = std::move(spans_);
    report.rates = std::move(rates_);
    (void)last_time;
    return report;
}

}  // namespace

SimReport simulate(const SimConfig& config) {
    Simulation sim(config);
    return sim.run();
}

std::string render_gantt(const SimReport& report,
                         const std::vector<PeModelSpec>& pes,
                         double time_step) {
    // Both execution modes share obs::render_gantt, so a simulated run
    // and a traced real run produce directly comparable charts.
    std::vector<obs::GanttSpan> spans;
    spans.reserve(report.spans.size());
    for (const TaskSpan& s : report.spans) {
        spans.push_back(
            obs::GanttSpan{s.pe, s.task, s.start, s.end, s.aborted});
    }
    std::vector<std::string> labels;
    labels.reserve(pes.size());
    for (const PeModelSpec& pe : pes) labels.push_back(pe.label);
    return obs::render_gantt(spans, labels, time_step);
}

obs::Trace to_trace(const SimReport& report,
                    const std::vector<PeModelSpec>& pes,
                    obs::TraceLaneData master_lane) {
    obs::Trace trace;
    const std::size_t first_pe = master_lane.events.empty() ? 0 : 1;
    trace.lanes.resize(first_pe + pes.size());
    if (first_pe == 1) {
        if (master_lane.label.empty()) master_lane.label = "master";
        trace.lanes[0] = std::move(master_lane);
    }
    for (std::size_t p = 0; p < pes.size(); ++p) {
        trace.lanes[first_pe + p].label = pes[p].label;
    }
    for (const TaskSpan& s : report.spans) {
        if (first_pe + s.pe >= trace.lanes.size()) continue;
        auto& events = trace.lanes[first_pe + s.pe].events;
        events.push_back(obs::TraceEvent{s.start, obs::EventKind::SpanBegin,
                                         static_cast<core::PeId>(s.pe),
                                         s.task, 0.0, "task"});
        events.push_back(obs::TraceEvent{s.end, obs::EventKind::SpanEnd,
                                         static_cast<core::PeId>(s.pe),
                                         s.task, s.aborted ? 1.0 : 0.0,
                                         "task"});
    }
    for (const RateSample& r : report.rates) {
        if (first_pe + r.pe >= trace.lanes.size()) continue;
        trace.lanes[first_pe + r.pe].events.push_back(obs::TraceEvent{
            r.time, obs::EventKind::Progress, static_cast<core::PeId>(r.pe),
            obs::kNoTask, r.gcups * 1e9, nullptr});
    }
    // Chrome's B/E pairing needs chronological lane order; at equal
    // timestamps an End must precede the next Begin (back-to-back
    // tasks).
    auto rank = [](const obs::TraceEvent& e) {
        if (e.kind == obs::EventKind::SpanEnd) return 0;
        if (e.kind == obs::EventKind::SpanBegin) return 2;
        return 1;
    };
    for (std::size_t li = first_pe; li < trace.lanes.size(); ++li) {
        auto& events = trace.lanes[li].events;
        std::stable_sort(events.begin(), events.end(),
                         [&](const obs::TraceEvent& a,
                             const obs::TraceEvent& b) {
                             if (a.t != b.t) return a.t < b.t;
                             return rank(a) < rank(b);
                         });
    }
    return trace;
}

}  // namespace swh::sim

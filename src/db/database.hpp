#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "align/sequence.hpp"
#include "db/generator.hpp"

namespace swh::db {

/// An in-memory sequence database plus cached residue total.
class Database {
public:
    Database() = default;

    Database(std::string name, std::vector<align::Sequence> sequences);

    static Database generate(const DatabaseSpec& spec) {
        return Database(spec.name, generate_database(spec));
    }

    const std::string& name() const { return name_; }
    const std::vector<align::Sequence>& sequences() const {
        return sequences_;
    }
    std::size_t size() const { return sequences_.size(); }
    std::uint64_t residues() const { return residues_; }

    const align::Sequence& operator[](std::size_t i) const {
        return sequences_[i];
    }

private:
    std::string name_;
    std::vector<align::Sequence> sequences_;
    std::uint64_t residues_ = 0;
};

}  // namespace swh::db

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "align/sequence.hpp"
#include "db/generator.hpp"
#include "db/packed.hpp"

namespace swh::db {

/// An in-memory sequence database plus cached residue total and a
/// lazily built packed scan representation shared by all engines.
class Database {
public:
    Database() = default;

    Database(std::string name, std::vector<align::Sequence> sequences);

    static Database generate(const DatabaseSpec& spec) {
        return Database(spec.name, generate_database(spec));
    }

    const std::string& name() const { return name_; }
    const std::vector<align::Sequence>& sequences() const {
        return sequences_;
    }
    std::size_t size() const { return sequences_.size(); }
    std::uint64_t residues() const { return residues_; }

    const align::Sequence& operator[](std::size_t i) const {
        return sequences_[i];
    }

    /// The packed arena over sequences(), built on first use (thread-
    /// safe) and cached for the database's lifetime. Copies of a
    /// Database share the cache — sequences are immutable after
    /// construction, so the packed form is too.
    const PackedDatabase& packed() const;

private:
    struct PackedCache {
        std::once_flag once;
        PackedDatabase packed;
    };

    std::string name_;
    std::vector<align::Sequence> sequences_;
    std::uint64_t residues_ = 0;
    std::shared_ptr<PackedCache> packed_cache_ = std::make_shared<PackedCache>();
};

}  // namespace swh::db

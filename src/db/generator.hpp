#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "align/sequence.hpp"
#include "util/rng.hpp"

namespace swh::db {

/// Length model for synthetic sequences: log-normal (the empirical shape
/// of protein-length distributions) clamped to [min_len, max_len].
struct LengthModel {
    std::size_t min_len = 40;
    std::size_t max_len = 5000;
    double log_mean = 5.7;   ///< exp(5.7) ~ 300 residues
    double log_stdev = 0.55;

    std::size_t sample(Rng& rng) const;

    /// Analytic-ish mean of the clamped distribution, via fixed-seed
    /// sampling; used by presets to estimate database residue totals.
    double approx_mean() const;
};

/// Specification of one synthetic database.
struct DatabaseSpec {
    std::string name;
    std::size_t num_sequences = 0;
    LengthModel length;
    std::uint64_t seed = 1;
};

/// Generates `spec.num_sequences` protein sequences with Robinson-Robinson
/// residue frequencies. Sequence i is generated from an independent
/// per-sequence stream, so the content of record i does not depend on how
/// many records precede it.
std::vector<align::Sequence> generate_database(const DatabaseSpec& spec);

/// Generates one random protein sequence of exactly `len` residues.
align::Sequence random_protein(Rng& rng, std::size_t len,
                               std::string id = "seq");

/// Generates one random DNA sequence of exactly `len` bases.
align::Sequence random_dna(Rng& rng, std::size_t len, std::string id = "seq");

/// Mutation settings for deriving homologous sequences (used by tests and
/// the homology-search example to plant true positives).
struct MutationModel {
    double substitution_rate = 0.05;
    double insertion_rate = 0.01;
    double deletion_rate = 0.01;
};

/// Applies point substitutions and short indels to a copy of `seq`.
align::Sequence mutate(const align::Sequence& seq,
                       const align::Alphabet& alphabet,
                       const MutationModel& model, Rng& rng);

}  // namespace swh::db

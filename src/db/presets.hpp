#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "db/database.hpp"
#include "db/generator.hpp"

namespace swh::db {

/// One of the paper's five genomic databases (Table II). `scale` shrinks
/// the sequence count for experiments that run real kernels on this
/// machine; the calibrated simulation uses scale = 1 and only needs the
/// residue totals.
struct DatabasePreset {
    std::string name;
    std::size_t num_sequences = 0;   ///< at scale 1.0 (Table II value)
    double mean_length = 0.0;        ///< assumed mean residues/sequence

    /// Total residues at scale 1 — the quantity that fixes per-task cell
    /// counts in the simulation.
    std::uint64_t total_residues() const {
        return static_cast<std::uint64_t>(
            static_cast<double>(num_sequences) * mean_length);
    }

    /// Concrete generator spec at a given scale (fraction of sequences).
    DatabaseSpec spec(double scale = 1.0, std::uint64_t seed = 1) const;
};

/// Table II presets, in paper order: Ensembl Dog, Ensembl Rat, RefSeq
/// Human, RefSeq Mouse, UniProtKB/SwissProt.
const std::vector<DatabasePreset>& table2_presets();

/// Lookup by (case-insensitive) name; throws if unknown.
const DatabasePreset& preset_by_name(const std::string& name);

/// The paper's query workload: `n` protein queries with lengths linearly
/// spaced from min_len to max_len ("equally distributed sizes, ranging
/// from 100 to approximately 5,000 amino acids").
std::vector<align::Sequence> make_query_set(std::size_t n = 40,
                                            std::size_t min_len = 100,
                                            std::size_t max_len = 5000,
                                            std::uint64_t seed = 42);

/// The deterministic sample database shared by bench_scan, the funnel
/// test suites, and the CI bench smoke step — generation is seed-pinned,
/// so every consumer scans byte-identical subjects without a checked-in
/// FASTA. `num_sequences` defaults to the bench_scan workload size.
DatabaseSpec scan_sample_spec(std::size_t num_sequences = 1500);

/// A realistic top-k scan workload: a scan_sample_spec-style random
/// background with one planted homolog family per requested query
/// length, plus the matching queries. Each family derives a random
/// anchor of that length, `family_size` database members mutated from
/// it at increasing divergence, and a query that is itself a light
/// mutant of the anchor — so the scan's true top-k scores sit far above
/// the random background, the way a homology search's do. Fully seed-
/// pinned; family members are appended after the background sequences.
struct ScanSample {
    Database database;
    /// queries[i] has length ~query_lengths[i] and a planted family.
    std::vector<align::Sequence> queries;
};
ScanSample make_scan_sample(std::size_t num_sequences,
                            const std::vector<std::size_t>& query_lengths,
                            std::size_t family_size = 12,
                            std::uint64_t seed = 404);

}  // namespace swh::db

#pragma once

// Packed scan representation of a sequence database: one contiguous,
// 64-byte-aligned residue arena with per-subject offsets/lengths, plus a
// length-sorted scan permutation. This is the layout the striped-kernel
// hot path scans (cf. SWIPE/SWAPHI-style packed device buffers): a scan
// walks the arena sequentially instead of pointer-chasing one
// heap-allocated std::vector per sequence, and residues are validated
// against the alphabet ONCE here instead of per kernel inner loop.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "align/db_scan.hpp"
#include "align/sequence.hpp"
#include "util/annotations.hpp"

namespace swh::db {

/// Lane-interleaved cohort layout of a packed database at one SIMD
/// width W: scan-order subjects are grouped into cohorts and each
/// cohort's residues are stored column-major — column j holds residue
/// j of every member, short lanes padded with the inter-sequence
/// padding sentinel. This is the input geometry of
/// align::sw_interseq_u8/i16. Built lazily by
/// PackedDatabase::interleaved().
///
/// Grouping: W consecutive scan-order slots form a natural cohort when
/// the full-width fill meets kCohortFillPct (the longest-first scan
/// order makes such members near-equal length). The leftovers — the
/// divergent long-subject head groups and the partial tail — are
/// re-packed by length adjacency into dense compacted cohorts
/// (CohortDesc::kCompacted, possibly fewer than W members, down to a
/// 1-subject tail), so low-fill stretches stop forcing full-width pad
/// columns. Cohort membership is carried by a slots table: lane l of
/// cohort d is scan slot slots()[d.first_slot + l].
class InterleavedChunks {
public:
    /// Minimum used-lane residue fill (percent) for keeping a natural
    /// full-width group, and for extending a compacted group by one
    /// more (shorter) member. Mirrors the historical dispatch bar so a
    /// kept natural cohort is never worse-filled than before.
    static constexpr std::uint64_t kCohortFillPct = 75;

    int lanes() const { return lanes_; }
    std::size_t cohort_count() const { return cohorts_.size(); }
    const align::CohortDesc& cohort(std::size_t c) const {
        return cohorts_[c];
    }
    /// Cohort-member table (cohort-major scan slots, see CohortDesc).
    std::span<const std::uint32_t> slots() const { return slots_; }
    /// Cohorts assembled by the compacted-tail build.
    std::size_t compacted_cohorts() const { return compacted_; }

    /// Non-owning view for align::DatabaseScanner; valid while this
    /// object (i.e. the owning PackedDatabase) is alive.
    align::InterleavedCohorts view() const;

private:
    friend class PackedDatabase;

    struct ArenaFree {
        void operator()(align::Code* p) const;
    };

    std::unique_ptr<align::Code[], ArenaFree> arena_;
    std::vector<align::CohortDesc> cohorts_;
    std::vector<std::uint32_t> slots_;
    std::size_t compacted_ = 0;
    int lanes_ = 0;
};

class PackedDatabase {
public:
    PackedDatabase() = default;

    /// Copies every residue into the arena, recording per-subject
    /// offsets/lengths, the largest residue code seen (the pack-time
    /// validation artefact consumed by align::DatabaseScanner), and the
    /// scan permutation: subjects ordered longest-first (ties by
    /// original index), so chunked workers process similar lengths with
    /// similarly sized scratch and the long tail is claimed early.
    static PackedDatabase pack(const std::vector<align::Sequence>& sequences);

    std::size_t size() const { return lengths_.size(); }
    std::uint64_t residues() const { return residues_; }
    std::size_t max_length() const { return max_length_; }
    align::Code max_code() const { return max_code_; }

    /// Residues of subject i (original database index).
    std::span<const align::Code> subject(std::size_t i) const {
        return {arena_.get() + offsets_[i], lengths_[i]};
    }
    std::uint32_t length(std::size_t i) const { return lengths_[i]; }

    /// The length-sorted scan permutation (original indices).
    std::span<const std::uint32_t> scan_order() const { return order_; }

    /// Non-owning view for align::DatabaseScanner. Valid as long as
    /// this PackedDatabase is alive.
    align::PackedSubjects view() const;

    /// Lane-interleaved cohort layout at width `lanes` (the aligner's
    /// u8 lane count, see align::lanes_u8). Built on first request and
    /// cached per width; thread-safe. Requires every residue code to
    /// stay below the padding sentinel — guaranteed whenever the matrix
    /// passes align::interseq_supported().
    const InterleavedChunks& interleaved(int lanes) const;

private:
    struct ArenaFree {
        void operator()(align::Code* p) const;
    };

    /// interleaved() cache, one entry per requested width. Behind a
    /// unique_ptr so PackedDatabase stays movable despite the mutex.
    struct ItlCache {
        swh::Mutex mutex;
        std::vector<std::unique_ptr<InterleavedChunks>> built
            SWH_GUARDED_BY(mutex);
    };

    std::unique_ptr<align::Code[], ArenaFree> arena_;
    std::vector<std::uint64_t> offsets_;
    std::vector<std::uint32_t> lengths_;
    std::vector<std::uint32_t> order_;
    std::uint64_t residues_ = 0;
    std::size_t max_length_ = 0;
    align::Code max_code_ = 0;
    std::unique_ptr<ItlCache> itl_ = std::make_unique<ItlCache>();
};

}  // namespace swh::db

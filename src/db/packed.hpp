#pragma once

// Packed scan representation of a sequence database: one contiguous,
// 64-byte-aligned residue arena with per-subject offsets/lengths, plus a
// length-sorted scan permutation. This is the layout the striped-kernel
// hot path scans (cf. SWIPE/SWAPHI-style packed device buffers): a scan
// walks the arena sequentially instead of pointer-chasing one
// heap-allocated std::vector per sequence, and residues are validated
// against the alphabet ONCE here instead of per kernel inner loop.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "align/db_scan.hpp"
#include "align/sequence.hpp"

namespace swh::db {

class PackedDatabase {
public:
    PackedDatabase() = default;

    /// Copies every residue into the arena, recording per-subject
    /// offsets/lengths, the largest residue code seen (the pack-time
    /// validation artefact consumed by align::DatabaseScanner), and the
    /// scan permutation: subjects ordered longest-first (ties by
    /// original index), so chunked workers process similar lengths with
    /// similarly sized scratch and the long tail is claimed early.
    static PackedDatabase pack(const std::vector<align::Sequence>& sequences);

    std::size_t size() const { return lengths_.size(); }
    std::uint64_t residues() const { return residues_; }
    std::size_t max_length() const { return max_length_; }
    align::Code max_code() const { return max_code_; }

    /// Residues of subject i (original database index).
    std::span<const align::Code> subject(std::size_t i) const {
        return {arena_.get() + offsets_[i], lengths_[i]};
    }
    std::uint32_t length(std::size_t i) const { return lengths_[i]; }

    /// The length-sorted scan permutation (original indices).
    std::span<const std::uint32_t> scan_order() const { return order_; }

    /// Non-owning view for align::DatabaseScanner. Valid as long as
    /// this PackedDatabase is alive.
    align::PackedSubjects view() const;

private:
    struct ArenaFree {
        void operator()(align::Code* p) const;
    };

    std::unique_ptr<align::Code[], ArenaFree> arena_;
    std::vector<std::uint64_t> offsets_;
    std::vector<std::uint32_t> lengths_;
    std::vector<std::uint32_t> order_;
    std::uint64_t residues_ = 0;
    std::size_t max_length_ = 0;
    align::Code max_code_ = 0;
};

}  // namespace swh::db

#include "db/presets.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/str.hpp"

namespace swh::db {

DatabaseSpec DatabasePreset::spec(double scale, std::uint64_t seed) const {
    SWH_REQUIRE(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    DatabaseSpec s;
    s.name = name;
    s.num_sequences = std::max<std::size_t>(
        1, static_cast<std::size_t>(static_cast<double>(num_sequences) *
                                    scale));
    // Log-normal parameters chosen so the clamped mean tracks mean_length.
    s.length.log_mean = std::log(mean_length) - 0.5 * 0.55 * 0.55;
    s.length.log_stdev = 0.55;
    s.length.min_len = 40;
    s.length.max_len = 8000;
    s.seed = seed;
    return s;
}

const std::vector<DatabasePreset>& table2_presets() {
    // Sequence counts are Table II's. Mean lengths are calibrated where
    // the paper pins them: SwissProt's 360 aa reproduces the 7190 s
    // single-SSE run (Table III), and Ensembl Dog's 960 aa reproduces
    // the 246 s dedicated 4-core run (Fig. 7) — Ensembl peptide dumps
    // include every transcript, inflating the mean. The others use
    // typical mammalian-proteome means.
    static const std::vector<DatabasePreset> presets = {
        {"Ensembl Dog", 25'160, 960.0},
        {"Ensembl Rat", 32'971, 520.0},
        {"RefSeq Human", 34'705, 550.0},
        {"RefSeq Mouse", 29'437, 520.0},
        {"UniProtKB/SwissProt", 537'505, 360.0},
    };
    return presets;
}

const DatabasePreset& preset_by_name(const std::string& name) {
    const std::string key = to_upper(name);
    for (const DatabasePreset& p : table2_presets()) {
        if (to_upper(p.name) == key ||
            to_upper(p.name).find(key) != std::string::npos) {
            return p;
        }
    }
    throw ContractError("unknown database preset: " + name);
}

ScanSample make_scan_sample(std::size_t num_sequences,
                            const std::vector<std::size_t>& query_lengths,
                            std::size_t family_size, std::uint64_t seed) {
    SWH_REQUIRE(!query_lengths.empty(),
                "scan sample needs at least one query length");
    SWH_REQUIRE(family_size >= 1, "family size must be at least 1");
    const std::size_t planted = family_size * query_lengths.size();
    SWH_REQUIRE(num_sequences > planted,
                "sample database too small for the planted families");

    DatabaseSpec spec = scan_sample_spec(num_sequences - planted);
    spec.seed = seed;
    std::vector<align::Sequence> seqs = generate_database(spec);
    const align::Alphabet& alphabet = align::Alphabet::protein();

    ScanSample out;
    out.queries.reserve(query_lengths.size());
    Rng master(seed ^ 0x5eedfa417ULL);
    for (const std::size_t len : query_lengths) {
        SWH_REQUIRE(len > 0, "query length must be positive");
        Rng stream = master.split();
        const align::Sequence anchor =
            random_protein(stream, len, "anchor-" + std::to_string(len));
        // The query is a light mutant of the anchor, the family members
        // increasingly heavy ones — query-vs-member scores then span a
        // realistic homolog range instead of the random background.
        MutationModel query_model;
        query_model.substitution_rate = 0.10;
        align::Sequence query = mutate(anchor, alphabet, query_model, stream);
        query.id = "query-" + std::to_string(len);
        for (std::size_t f = 0; f < family_size; ++f) {
            MutationModel member_model;
            member_model.substitution_rate =
                0.05 + 0.015 * static_cast<double>(f);
            align::Sequence member =
                mutate(anchor, alphabet, member_model, stream);
            member.id =
                "fam" + std::to_string(len) + "-" + std::to_string(f);
            seqs.push_back(std::move(member));
        }
        out.queries.push_back(std::move(query));
    }
    out.database = Database("bench-scan", std::move(seqs));
    return out;
}

DatabaseSpec scan_sample_spec(std::size_t num_sequences) {
    SWH_REQUIRE(num_sequences > 0, "sample database must be non-empty");
    DatabaseSpec spec;
    spec.name = "bench-scan";
    spec.num_sequences = num_sequences;
    spec.seed = 404;
    return spec;
}

std::vector<align::Sequence> make_query_set(std::size_t n,
                                            std::size_t min_len,
                                            std::size_t max_len,
                                            std::uint64_t seed) {
    SWH_REQUIRE(n > 0, "query set must be non-empty");
    SWH_REQUIRE(min_len > 0 && min_len <= max_len, "bad length range");
    std::vector<align::Sequence> out;
    out.reserve(n);
    Rng master(seed);
    for (std::size_t i = 0; i < n; ++i) {
        Rng stream = master.split();
        std::size_t len = min_len;
        if (n > 1) {
            len += (max_len - min_len) * i / (n - 1);
        }
        out.push_back(
            random_protein(stream, len, "query_" + std::to_string(i)));
    }
    return out;
}

}  // namespace swh::db

#include "db/packed.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <new>

#include "util/error.hpp"

namespace swh::db {

namespace {
constexpr std::size_t kArenaAlign = 64;
}

void PackedDatabase::ArenaFree::operator()(align::Code* p) const {
    ::operator delete[](p, std::align_val_t{kArenaAlign});
}

void InterleavedChunks::ArenaFree::operator()(align::Code* p) const {
    ::operator delete[](p, std::align_val_t{kArenaAlign});
}

align::InterleavedCohorts InterleavedChunks::view() const {
    align::InterleavedCohorts v;
    v.arena = arena_.get();
    v.cohorts = cohorts_.data();
    v.count = cohorts_.size();
    v.lanes = lanes_;
    v.pad_code = align::InterseqProfile::kPadCode;
    return v;
}

PackedDatabase PackedDatabase::pack(
    const std::vector<align::Sequence>& sequences) {
    SWH_REQUIRE(sequences.size() <= std::numeric_limits<std::uint32_t>::max(),
                "database too large for 32-bit subject indices");
    PackedDatabase p;
    const std::size_t n = sequences.size();
    p.offsets_.reserve(n);
    p.lengths_.reserve(n);

    std::uint64_t total = 0;
    for (const align::Sequence& s : sequences) {
        SWH_REQUIRE(s.size() <= std::numeric_limits<std::uint32_t>::max(),
                    "sequence too long for the packed layout");
        total += s.size();
    }
    if (total > 0) {
        p.arena_.reset(static_cast<align::Code*>(
            ::operator new[](total, std::align_val_t{kArenaAlign})));
    }

    for (const align::Sequence& s : sequences) {
        p.lengths_.push_back(static_cast<std::uint32_t>(s.size()));
        p.max_length_ = std::max(p.max_length_, s.size());
    }

    p.order_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        p.order_[i] = static_cast<std::uint32_t>(i);
    }
    // Longest-first with a stable index tie-break: deterministic, keeps
    // similar lengths adjacent, and front-loads the long tail so chunked
    // claiming balances well.
    std::sort(p.order_.begin(), p.order_.end(),
              [&p](std::uint32_t a, std::uint32_t b) {
                  if (p.lengths_[a] != p.lengths_[b]) {
                      return p.lengths_[a] > p.lengths_[b];
                  }
                  return a < b;
              });

    // Lay the arena out in scan order: pass 1 walks order_[0..n) and so
    // streams the arena front to back with no strided jumps. offsets_
    // stays indexed by the original database index.
    p.offsets_.assign(n, 0);
    std::uint64_t at = 0;
    align::Code max_code = 0;
    for (const std::uint32_t idx : p.order_) {
        const align::Sequence& s = sequences[idx];
        p.offsets_[idx] = at;
        if (!s.residues.empty()) {
            std::memcpy(p.arena_.get() + at, s.residues.data(), s.size());
            for (const align::Code c : s.residues) {
                max_code = std::max(max_code, c);
            }
            at += s.size();
        }
    }
    p.residues_ = total;
    p.max_code_ = max_code;
    return p;
}

const InterleavedChunks& PackedDatabase::interleaved(int lanes) const {
    SWH_REQUIRE(lanes >= 1 && lanes <= 64,
                "cohort width must be a SIMD u8 lane count (1..64)");
    SWH_REQUIRE(size() == 0 || max_code_ < align::InterseqProfile::kPadCode,
                "residue codes collide with the interleave padding sentinel");
    std::lock_guard<std::mutex> lock(itl_->mutex);
    for (const auto& c : itl_->built) {
        if (c->lanes() == lanes) return *c;
    }

    auto chunks = std::make_unique<InterleavedChunks>();
    chunks->lanes_ = lanes;
    const std::size_t n = size();
    const std::size_t w = static_cast<std::size_t>(lanes);
    const std::size_t count = (n + w - 1) / w;
    chunks->cohorts_.reserve(count);

    // Pass 1: size every cohort. Members are W consecutive scan-order
    // slots; the longest-first order puts the cohort's longest member
    // first, so its length is the column count.
    std::uint64_t total = 0;
    for (std::size_t c = 0; c < count; ++c) {
        align::CohortDesc d;
        d.first_slot = static_cast<std::uint32_t>(c * w);
        d.lanes_used =
            static_cast<std::uint32_t>(std::min(w, n - c * w));
        d.columns = lengths_[order_[d.first_slot]];
        d.offset = total;
        for (std::uint32_t l = 0; l < d.lanes_used; ++l) {
            d.residues += lengths_[order_[d.first_slot + l]];
        }
        total += std::uint64_t{d.columns} * w;
        chunks->cohorts_.push_back(d);
    }

    if (total > 0) {
        chunks->arena_.reset(static_cast<align::Code*>(
            ::operator new[](total, std::align_val_t{kArenaAlign})));
        // Pass 2: fill column-major — column j holds residue j of every
        // lane — padding exhausted/absent lanes with the sentinel the
        // inter-sequence profile maps to the worst score.
        std::memset(chunks->arena_.get(), align::InterseqProfile::kPadCode,
                    total);
        for (const align::CohortDesc& d : chunks->cohorts_) {
            align::Code* base = chunks->arena_.get() + d.offset;
            for (std::uint32_t l = 0; l < d.lanes_used; ++l) {
                const std::uint32_t idx = order_[d.first_slot + l];
                const align::Code* src = arena_.get() + offsets_[idx];
                const std::uint32_t len = lengths_[idx];
                for (std::uint32_t j = 0; j < len; ++j) {
                    base[std::size_t{j} * w + l] = src[j];
                }
            }
        }
    }

    itl_->built.push_back(std::move(chunks));
    return *itl_->built.back();
}

align::PackedSubjects PackedDatabase::view() const {
    align::PackedSubjects v;
    v.arena = arena_.get();
    v.offsets = offsets_.data();
    v.lengths = lengths_.data();
    v.order = order_.data();
    v.count = lengths_.size();
    v.max_length = max_length_;
    v.max_code = max_code_;
    return v;
}

}  // namespace swh::db

#include "db/packed.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <new>

#include "util/error.hpp"

namespace swh::db {

namespace {
constexpr std::size_t kArenaAlign = 64;
}

void PackedDatabase::ArenaFree::operator()(align::Code* p) const {
    ::operator delete[](p, std::align_val_t{kArenaAlign});
}

void InterleavedChunks::ArenaFree::operator()(align::Code* p) const {
    ::operator delete[](p, std::align_val_t{kArenaAlign});
}

align::InterleavedCohorts InterleavedChunks::view() const {
    align::InterleavedCohorts v;
    v.arena = arena_.get();
    v.cohorts = cohorts_.data();
    v.slots = slots_.empty() ? nullptr : slots_.data();
    v.count = cohorts_.size();
    v.lanes = lanes_;
    v.pad_code = align::InterseqProfile::kPadCode;
    return v;
}

PackedDatabase PackedDatabase::pack(
    const std::vector<align::Sequence>& sequences) {
    SWH_REQUIRE(sequences.size() <= std::numeric_limits<std::uint32_t>::max(),
                "database too large for 32-bit subject indices");
    PackedDatabase p;
    const std::size_t n = sequences.size();
    p.offsets_.reserve(n);
    p.lengths_.reserve(n);

    std::uint64_t total = 0;
    for (const align::Sequence& s : sequences) {
        SWH_REQUIRE(s.size() <= std::numeric_limits<std::uint32_t>::max(),
                    "sequence too long for the packed layout");
        total += s.size();
    }
    if (total > 0) {
        p.arena_.reset(static_cast<align::Code*>(
            ::operator new[](total, std::align_val_t{kArenaAlign})));
    }

    for (const align::Sequence& s : sequences) {
        p.lengths_.push_back(static_cast<std::uint32_t>(s.size()));
        p.max_length_ = std::max(p.max_length_, s.size());
    }

    p.order_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        p.order_[i] = static_cast<std::uint32_t>(i);
    }
    // Longest-first with a stable index tie-break: deterministic, keeps
    // similar lengths adjacent, and front-loads the long tail so chunked
    // claiming balances well.
    std::sort(p.order_.begin(), p.order_.end(),
              [&p](std::uint32_t a, std::uint32_t b) {
                  if (p.lengths_[a] != p.lengths_[b]) {
                      return p.lengths_[a] > p.lengths_[b];
                  }
                  return a < b;
              });

    // Lay the arena out in scan order: pass 1 walks order_[0..n) and so
    // streams the arena front to back with no strided jumps. offsets_
    // stays indexed by the original database index.
    p.offsets_.assign(n, 0);
    std::uint64_t at = 0;
    align::Code max_code = 0;
    for (const std::uint32_t idx : p.order_) {
        const align::Sequence& s = sequences[idx];
        p.offsets_[idx] = at;
        if (!s.residues.empty()) {
            std::memcpy(p.arena_.get() + at, s.residues.data(), s.size());
            for (const align::Code c : s.residues) {
                max_code = std::max(max_code, c);
            }
            at += s.size();
        }
    }
    p.residues_ = total;
    p.max_code_ = max_code;
    return p;
}

const InterleavedChunks& PackedDatabase::interleaved(int lanes) const {
    SWH_REQUIRE(lanes >= 1 && lanes <= 64,
                "cohort width must be a SIMD u8 lane count (1..64)");
    SWH_REQUIRE(size() == 0 || max_code_ < align::InterseqProfile::kPadCode,
                "residue codes collide with the interleave padding sentinel");
    const swh::LockGuard lock(itl_->mutex);
    for (const auto& c : itl_->built) {
        if (c->lanes() == lanes) return *c;
    }

    auto chunks = std::make_unique<InterleavedChunks>();
    chunks->lanes_ = lanes;
    const std::size_t n = size();
    const std::size_t w = static_cast<std::size_t>(lanes);

    // Grouping pass: W consecutive scan-order slots stay a natural
    // cohort when the full-width fill meets the bar (the longest-first
    // order puts the group's longest member first, so its length is
    // the column count). Everything else — divergent long-subject head
    // groups and the partial tail — is set aside for the compacted
    // re-pack. The leftovers keep scan order, i.e. length-descending.
    struct Group {
        std::uint32_t begin = 0;  ///< index into members
        std::uint32_t count = 0;
        std::uint32_t columns = 0;
        std::uint64_t residues = 0;
        bool compacted = false;
    };
    std::vector<Group> groups;
    std::vector<std::uint32_t> members;  ///< scan slots, group-major
    members.reserve(n);
    std::vector<std::uint32_t> leftovers;
    for (std::size_t s0 = 0; s0 < n; s0 += w) {
        const std::size_t cnt = std::min(w, n - s0);
        const std::uint32_t columns = lengths_[order_[s0]];
        std::uint64_t residues = 0;
        for (std::size_t l = 0; l < cnt; ++l) {
            residues += lengths_[order_[s0 + l]];
        }
        if (cnt == w &&
            residues * 100 >= std::uint64_t{columns} * w *
                                  InterleavedChunks::kCohortFillPct) {
            Group g;
            g.begin = static_cast<std::uint32_t>(members.size());
            g.count = static_cast<std::uint32_t>(cnt);
            g.columns = columns;
            g.residues = residues;
            groups.push_back(g);
            for (std::size_t l = 0; l < cnt; ++l) {
                members.push_back(static_cast<std::uint32_t>(s0 + l));
            }
        } else {
            for (std::size_t l = 0; l < cnt; ++l) {
                leftovers.push_back(static_cast<std::uint32_t>(s0 + l));
            }
        }
    }
    // Compacted re-pack: greedy length-adjacent grouping of the
    // leftovers — a group grows while it stays under W members and the
    // used-lane fill relative to its longest (first) member holds, so
    // a fresh variable-width boundary starts whenever lengths diverge.
    // Degenerates to 1-subject cohorts for isolated outliers.
    for (std::size_t i = 0; i < leftovers.size();) {
        const std::uint64_t columns = lengths_[order_[leftovers[i]]];
        std::uint64_t residues = columns;
        std::size_t j = i + 1;
        while (j < leftovers.size() && j - i < w) {
            const std::uint64_t next =
                residues + lengths_[order_[leftovers[j]]];
            if (next * 100 < columns * (j - i + 1) *
                                 InterleavedChunks::kCohortFillPct) {
                break;
            }
            residues = next;
            ++j;
        }
        Group g;
        g.begin = static_cast<std::uint32_t>(members.size());
        g.count = static_cast<std::uint32_t>(j - i);
        g.columns = static_cast<std::uint32_t>(columns);
        g.residues = residues;
        g.compacted = true;
        groups.push_back(g);
        for (; i < j; ++i) members.push_back(leftovers[i]);
    }

    // Longest-first cohort order (stable across the natural/compacted
    // interleaving) keeps the claim-balancing property of the scan
    // order: workers pick up the expensive cohorts first.
    std::stable_sort(groups.begin(), groups.end(),
                     [](const Group& a, const Group& b) {
                         return a.columns > b.columns;
                     });

    chunks->cohorts_.reserve(groups.size());
    chunks->slots_.reserve(n);
    std::uint64_t total = 0;
    for (const Group& g : groups) {
        align::CohortDesc d;
        d.offset = total;
        d.residues = g.residues;
        d.columns = g.columns;
        d.first_slot = static_cast<std::uint32_t>(chunks->slots_.size());
        d.lanes_used = g.count;
        if (g.compacted) {
            d.flags |= align::CohortDesc::kCompacted;
            ++chunks->compacted_;
        }
        total += std::uint64_t{g.columns} * w;
        chunks->cohorts_.push_back(d);
        for (std::uint32_t l = 0; l < g.count; ++l) {
            chunks->slots_.push_back(members[g.begin + l]);
        }
    }

    if (total > 0) {
        chunks->arena_.reset(static_cast<align::Code*>(
            ::operator new[](total, std::align_val_t{kArenaAlign})));
        // Fill pass: column-major — column j holds residue j of every
        // lane — padding exhausted/absent lanes with the sentinel the
        // inter-sequence profile maps to the worst score.
        std::memset(chunks->arena_.get(), align::InterseqProfile::kPadCode,
                    total);
        for (const align::CohortDesc& d : chunks->cohorts_) {
            align::Code* base = chunks->arena_.get() + d.offset;
            for (std::uint32_t l = 0; l < d.lanes_used; ++l) {
                const std::uint32_t idx =
                    order_[chunks->slots_[d.first_slot + l]];
                const align::Code* src = arena_.get() + offsets_[idx];
                const std::uint32_t len = lengths_[idx];
                for (std::uint32_t j = 0; j < len; ++j) {
                    base[std::size_t{j} * w + l] = src[j];
                }
            }
        }
    }

    itl_->built.push_back(std::move(chunks));
    return *itl_->built.back();
}

align::PackedSubjects PackedDatabase::view() const {
    align::PackedSubjects v;
    v.arena = arena_.get();
    v.offsets = offsets_.data();
    v.lengths = lengths_.data();
    v.order = order_.data();
    v.count = lengths_.size();
    v.max_length = max_length_;
    v.max_code = max_code_;
    return v;
}

}  // namespace swh::db

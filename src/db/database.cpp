#include "db/database.hpp"

namespace swh::db {

Database::Database(std::string name, std::vector<align::Sequence> sequences)
    : name_(std::move(name)), sequences_(std::move(sequences)) {
    residues_ = align::total_residues(sequences_);
}

const PackedDatabase& Database::packed() const {
    PackedCache& cache = *packed_cache_;
    std::call_once(cache.once,
                   [&] { cache.packed = PackedDatabase::pack(sequences_); });
    return cache.packed;
}

}  // namespace swh::db

#include "db/database.hpp"

namespace swh::db {

Database::Database(std::string name, std::vector<align::Sequence> sequences)
    : name_(std::move(name)), sequences_(std::move(sequences)) {
    residues_ = align::total_residues(sequences_);
}

}  // namespace swh::db

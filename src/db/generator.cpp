#include "db/generator.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "util/error.hpp"

namespace swh::db {

using align::Alphabet;
using align::Code;
using align::Sequence;

namespace {

// Robinson & Robinson (1991) amino-acid background frequencies, in the
// NCBI matrix symbol order ARNDCQEGHILKMFPSTWYV (B/Z/X/* get 0).
constexpr std::array<double, 20> kAaFreq = {
    0.07805, 0.05129, 0.04487, 0.05364, 0.01925, 0.04264, 0.06295,
    0.07377, 0.02199, 0.05142, 0.09019, 0.05744, 0.02243, 0.03856,
    0.05203, 0.07120, 0.05841, 0.01330, 0.03216, 0.06441};

Code sample_amino_acid(Rng& rng) {
    return static_cast<Code>(rng.weighted_index(kAaFreq.data(),
                                                kAaFreq.size()));
}

}  // namespace

std::size_t LengthModel::sample(Rng& rng) const {
    SWH_REQUIRE(min_len > 0 && min_len <= max_len,
                "length model bounds invalid");
    const double x = std::exp(rng.normal(log_mean, log_stdev));
    const auto len = static_cast<std::size_t>(std::llround(x));
    return std::clamp(len, min_len, max_len);
}

double LengthModel::approx_mean() const {
    Rng rng(0xA11CE5EEDULL);
    constexpr int kSamples = 4096;
    double total = 0.0;
    for (int i = 0; i < kSamples; ++i)
        total += static_cast<double>(sample(rng));
    return total / kSamples;
}

align::Sequence random_protein(Rng& rng, std::size_t len, std::string id) {
    Sequence seq;
    seq.id = std::move(id);
    seq.residues.reserve(len);
    for (std::size_t i = 0; i < len; ++i)
        seq.residues.push_back(sample_amino_acid(rng));
    return seq;
}

align::Sequence random_dna(Rng& rng, std::size_t len, std::string id) {
    Sequence seq;
    seq.id = std::move(id);
    seq.residues.reserve(len);
    for (std::size_t i = 0; i < len; ++i)
        seq.residues.push_back(static_cast<Code>(rng.below(4)));
    return seq;
}

std::vector<Sequence> generate_database(const DatabaseSpec& spec) {
    std::vector<Sequence> out;
    out.reserve(spec.num_sequences);
    Rng master(spec.seed);
    for (std::size_t i = 0; i < spec.num_sequences; ++i) {
        Rng stream = master.split();
        const std::size_t len = spec.length.sample(stream);
        out.push_back(
            random_protein(stream, len,
                           spec.name + "_" + std::to_string(i)));
    }
    return out;
}

align::Sequence mutate(const Sequence& seq, const Alphabet& alphabet,
                       const MutationModel& model, Rng& rng) {
    SWH_REQUIRE(model.substitution_rate >= 0 && model.insertion_rate >= 0 &&
                    model.deletion_rate >= 0,
                "mutation rates must be non-negative");
    const bool protein = alphabet == Alphabet::protein();
    const std::uint64_t plain_symbols = protein ? 20 : 4;
    Sequence out;
    out.id = seq.id + "_mut";
    out.residues.reserve(seq.residues.size());
    for (const Code c : seq.residues) {
        if (rng.uniform() < model.deletion_rate) continue;
        if (rng.uniform() < model.insertion_rate) {
            out.residues.push_back(
                protein ? sample_amino_acid(rng)
                        : static_cast<Code>(rng.below(plain_symbols)));
        }
        if (rng.uniform() < model.substitution_rate) {
            Code repl = c;
            while (repl == c)
                repl = protein
                           ? sample_amino_acid(rng)
                           : static_cast<Code>(rng.below(plain_symbols));
            out.residues.push_back(repl);
        } else {
            out.residues.push_back(c);
        }
    }
    return out;
}

}  // namespace swh::db

#pragma once

/// Umbrella header: the swhybrid public API.
///
/// The library reproduces "Biological Sequence Comparison on Hybrid
/// Platforms with Dynamic Workload Adjustment" (Mendonça & de Melo,
/// IPDPSW 2013). The usual entry points:
///
///  * pairwise scoring/alignment   — align/ (StripedAligner,
///    sw_score_affine, sw_align_affine_lowmem, nw_align_affine_linear)
///  * sequence I/O                 — io/ (FASTA + the indexed format)
///  * synthetic data               — db/ (generator, Table II presets)
///  * hit statistics               — align/evalue.hpp
///  * the scheduling contribution  — core/ (SchedulerCore, policies)
///  * compute engines              — engines/
///  * threaded execution           — runtime/HybridRuntime
///  * simulated platforms          — sim/ (discrete-event simulator)
///  * multiple sequence alignment  — msa/ (future-work extension)
///  * DNA assembly                 — assembly/ (future-work extension)

#include "align/alignment.hpp"      // IWYU pragma: export
#include "align/alphabet.hpp"       // IWYU pragma: export
#include "align/banded.hpp"         // IWYU pragma: export
#include "align/evalue.hpp"         // IWYU pragma: export
#include "align/local_align.hpp"    // IWYU pragma: export
#include "align/myers_miller.hpp"   // IWYU pragma: export
#include "align/overlap.hpp"        // IWYU pragma: export
#include "align/score_matrix.hpp"   // IWYU pragma: export
#include "align/sequence.hpp"       // IWYU pragma: export
#include "align/striped.hpp"        // IWYU pragma: export
#include "align/sw_scalar.hpp"      // IWYU pragma: export
#include "align/traceback.hpp"      // IWYU pragma: export
#include "assembly/assembler.hpp"   // IWYU pragma: export
#include "assembly/read_sim.hpp"    // IWYU pragma: export
#include "core/policy.hpp"          // IWYU pragma: export
#include "core/results.hpp"         // IWYU pragma: export
#include "core/scheduler.hpp"       // IWYU pragma: export
#include "db/database.hpp"          // IWYU pragma: export
#include "db/presets.hpp"           // IWYU pragma: export
#include "engines/cpu_engine.hpp"   // IWYU pragma: export
#include "engines/fpga_engine.hpp"  // IWYU pragma: export
#include "engines/sim_gpu_engine.hpp"   // IWYU pragma: export
#include "engines/throttled_engine.hpp" // IWYU pragma: export
#include "io/fasta.hpp"             // IWYU pragma: export
#include "io/fastq.hpp"             // IWYU pragma: export
#include "io/indexed.hpp"           // IWYU pragma: export
#include "msa/progressive.hpp"      // IWYU pragma: export
#include "runtime/hybrid_runtime.hpp"   // IWYU pragma: export
#include "sim/simulator.hpp"        // IWYU pragma: export

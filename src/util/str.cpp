#include "util/str.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace swh {

std::vector<std::string> split(std::string_view s, char delim) {
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = s.find(delim, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(s.substr(start));
            return out;
        }
        out.emplace_back(s.substr(start, pos - start));
        start = pos + 1;
    }
}

std::vector<std::string> split_ws(std::string_view s) {
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
        std::size_t start = i;
        while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
        if (i > start) out.emplace_back(s.substr(start, i - start));
    }
    return out;
}

std::string_view trim(std::string_view s) {
    std::size_t b = 0;
    while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
    std::size_t e = s.size();
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
    return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
    return s.substr(0, prefix.size()) == prefix;
}

std::string to_upper(std::string_view s) {
    std::string out(s);
    for (char& c : out)
        c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    return out;
}

std::string with_thousands(long long value) {
    const bool neg = value < 0;
    std::string digits = std::to_string(neg ? -value : value);
    std::string out;
    out.reserve(digits.size() + digits.size() / 3 + 1);
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count && count % 3 == 0) out.push_back(',');
        out.push_back(*it);
        ++count;
    }
    if (neg) out.push_back('-');
    return {out.rbegin(), out.rend()};
}

std::string format_double(double value, int decimals) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
    return buf;
}

std::string format_duration(double seconds) {
    if (seconds < 60.0) return format_double(seconds, 2) + "s";
    const auto total = static_cast<long long>(std::llround(seconds));
    const long long h = total / 3600;
    const long long m = (total % 3600) / 60;
    const long long s = total % 60;
    char buf[64];
    if (h > 0) {
        std::snprintf(buf, sizeof buf, "%lldh%02lldm%02llds", h, m, s);
    } else {
        std::snprintf(buf, sizeof buf, "%lldm%02llds", m, s);
    }
    return buf;
}

}  // namespace swh

#pragma once

// Clang thread-safety annotation layer (DESIGN.md "Static analysis &
// contracts"). Under Clang with -Wthread-safety the macros expand to the
// capability attributes, turning lock-discipline violations — touching a
// SWH_GUARDED_BY member without its mutex, calling an SWH_REQUIRES
// function unlocked, double-acquisition — into compile errors. Under
// GCC (and any compiler without the attributes) they expand to nothing,
// so the annotated wrappers below behave exactly like the std types
// they delegate to.
//
// Conventions:
//   * every mutex-protected member is SWH_GUARDED_BY(mu_);
//   * public methods that take the lock themselves are SWH_EXCLUDES(mu_);
//   * private helpers called under the lock are SWH_REQUIRES(mu_);
//   * condition waits go through swh::CondVar, which waits on the
//     annotated swh::Mutex directly (condition_variable_any), so the
//     analysis sees one capability from acquisition to release.

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SWH_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef SWH_THREAD_ANNOTATION
#define SWH_THREAD_ANNOTATION(x)
#endif

#define SWH_CAPABILITY(name) SWH_THREAD_ANNOTATION(capability(name))
#define SWH_SCOPED_CAPABILITY SWH_THREAD_ANNOTATION(scoped_lockable)
#define SWH_GUARDED_BY(...) SWH_THREAD_ANNOTATION(guarded_by(__VA_ARGS__))
#define SWH_PT_GUARDED_BY(...) \
    SWH_THREAD_ANNOTATION(pt_guarded_by(__VA_ARGS__))
#define SWH_REQUIRES(...) \
    SWH_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SWH_REQUIRES_SHARED(...) \
    SWH_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define SWH_ACQUIRE(...) \
    SWH_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SWH_RELEASE(...) \
    SWH_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SWH_TRY_ACQUIRE(...) \
    SWH_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define SWH_EXCLUDES(...) SWH_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define SWH_ASSERT_CAPABILITY(...) \
    SWH_THREAD_ANNOTATION(assert_capability(__VA_ARGS__))
#define SWH_RETURN_CAPABILITY(x) SWH_THREAD_ANNOTATION(lock_returned(x))
#define SWH_NO_THREAD_SAFETY_ANALYSIS \
    SWH_THREAD_ANNOTATION(no_thread_safety_analysis)

// Marks a function as part of the scan's steady-state hot path: once
// warm it must not allocate, build std::function thunks, or throw
// lexically (contract failures route through the outlined
// swh::check::detail::fail). The swh-tidy plugin's
// swh-no-alloc-in-hot-path check (tools/swh-tidy/) enforces this
// mechanically; intentional amortized growth sites carry a
// NOLINT(swh-no-alloc-in-hot-path) with a reason. Expands to a pure
// metadata attribute under Clang (no codegen effect) and to nothing
// elsewhere, so annotating a function is zero-cost.
#if defined(__clang__)
#define SWH_HOT_PATH [[clang::annotate("swh::hot")]]
#else
#define SWH_HOT_PATH
#endif

// Opt-out for swh-guarded-by-required (tools/swh-tidy/): a mutable
// member of a mutex-owning class that is deliberately NOT guarded by
// the mutex — e.g. set once before threads exist, or owned by a single
// thread with ordering established elsewhere. Always pair with a
// comment saying why. Pure metadata under Clang, nothing elsewhere.
#if defined(__clang__)
#define SWH_NOT_GUARDED [[clang::annotate("swh::not_guarded")]]
#else
#define SWH_NOT_GUARDED
#endif

namespace swh {

/// std::mutex with the capability attribute, so members can be declared
/// SWH_GUARDED_BY(mu_) and methods SWH_REQUIRES(mu_)/SWH_EXCLUDES(mu_).
class SWH_CAPABILITY("mutex") Mutex {
public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() SWH_ACQUIRE() { mu_.lock(); }
    void unlock() SWH_RELEASE() { mu_.unlock(); }
    bool try_lock() SWH_TRY_ACQUIRE(true) { return mu_.try_lock(); }

private:
    std::mutex mu_;
};

/// std::lock_guard over swh::Mutex, visible to the analysis as a scoped
/// capability: the guarded region is the guard's lexical scope.
class SWH_SCOPED_CAPABILITY LockGuard {
public:
    explicit LockGuard(Mutex& mu) SWH_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
    ~LockGuard() SWH_RELEASE() { mu_.unlock(); }

    LockGuard(const LockGuard&) = delete;
    LockGuard& operator=(const LockGuard&) = delete;

private:
    Mutex& mu_;
};

/// Condition variable that waits on the annotated Mutex itself
/// (condition_variable_any), so waiting code keeps a single capability
/// in scope — the transient release inside wait() is invisible to the
/// analysis, matching the caller-visible contract (held before and
/// after the call).
class CondVar {
public:
    CondVar() = default;
    CondVar(const CondVar&) = delete;
    CondVar& operator=(const CondVar&) = delete;

    void wait(Mutex& mu) SWH_REQUIRES(mu) { cv_.wait(mu); }

    template <class Clock, class Duration>
    std::cv_status wait_until(
        Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
        SWH_REQUIRES(mu) {
        return cv_.wait_until(mu, deadline);
    }

    void notify_one() { cv_.notify_one(); }
    void notify_all() { cv_.notify_all(); }

private:
    std::condition_variable_any cv_;
};

}  // namespace swh

#pragma once

#include <cstdint>
#include <limits>

namespace swh {

/// xoshiro256** 1.0 (Blackman & Vigna, public domain reference
/// implementation). Deterministic across platforms, unlike
/// std::default_random_engine, which matters because every synthetic
/// database and simulated schedule must be reproducible from a seed.
class Rng {
public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    void reseed(std::uint64_t seed);

    std::uint64_t next();

    std::uint64_t operator()() { return next(); }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() {
        return std::numeric_limits<std::uint64_t>::max();
    }

    /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
    std::uint64_t below(std::uint64_t bound);

    /// Uniform integer in [lo, hi] inclusive.
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /// Uniform double in [0, 1).
    double uniform();

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi);

    /// Standard normal via Box–Muller (no state beyond the stream).
    double normal();

    double normal(double mean, double stdev) { return mean + stdev * normal(); }

    /// Samples an index in [0, n) with probability proportional to
    /// weights[i]. Weights need not be normalised.
    std::size_t weighted_index(const double* weights, std::size_t n);

    /// Splits off an independently seeded child stream. Used to give each
    /// generated sequence its own stream so databases are stable under
    /// reordering of generation calls.
    Rng split();

private:
    std::uint64_t s_[4];
};

}  // namespace swh

#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace swh {

/// Thrown when a precondition or invariant stated with SWH_REQUIRE fails.
class ContractError : public std::logic_error {
public:
    explicit ContractError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown on malformed input files or protocol messages.
class ParseError : public std::runtime_error {
public:
    explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown on filesystem-level failures (open/read/write).
class IoError : public std::runtime_error {
public:
    explicit IoError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_contract_error(const char* expr, const char* msg,
                                       std::source_location loc);
}  // namespace detail

}  // namespace swh

/// Precondition/invariant check that stays on in release builds. The
/// scheduler and kernels are driven by untrusted experiment configs, so
/// violations must surface as exceptions, not UB.
#define SWH_REQUIRE(expr, msg)                                          \
    do {                                                                \
        if (!(expr)) {                                                  \
            ::swh::detail::throw_contract_error(                        \
                #expr, (msg), std::source_location::current());         \
        }                                                               \
    } while (false)

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace swh {

/// Plain-text table renderer used by the benchmark harness to print the
/// paper's tables. Columns are right-aligned except the first.
class TextTable {
public:
    explicit TextTable(std::vector<std::string> header);

    void add_row(std::vector<std::string> cells);

    /// Inserts a horizontal rule before the next row.
    void add_rule();

    std::string render() const;

    void print(std::ostream& os) const;

    std::size_t rows() const { return rows_.size(); }

private:
    struct Row {
        std::vector<std::string> cells;
        bool rule_before = false;
    };
    std::vector<std::string> header_;
    std::vector<Row> rows_;
    bool pending_rule_ = false;
};

/// Minimal CSV writer (RFC-4180 quoting) so bench output can feed plots.
class CsvWriter {
public:
    explicit CsvWriter(std::ostream& os) : os_(os) {}

    void row(const std::vector<std::string>& cells);

private:
    std::ostream& os_;
};

}  // namespace swh

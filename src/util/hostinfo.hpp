#pragma once

// Host/build provenance for benchmark artifacts: BENCH_scan.json files
// are only comparable across machines and commits when each one says
// which machine and commit produced it.

#include <string>

namespace swh {

struct HostInfo {
    std::string cpu_model;        ///< /proc/cpuinfo "model name" (or "")
    unsigned hardware_threads = 0;
    std::string compiler;         ///< compiler id + version
    std::string git_sha;          ///< build-time HEAD (or "unknown")
    std::string build_flags;      ///< build type + CXX flags baked in
};

/// Gathers the above; never throws (missing sources yield defaults).
HostInfo host_info();

}  // namespace swh

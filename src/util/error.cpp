#include "util/error.hpp"

#include <sstream>

namespace swh::detail {

void throw_contract_error(const char* expr, const char* msg,
                          std::source_location loc) {
    std::ostringstream os;
    os << loc.file_name() << ':' << loc.line() << " in " << loc.function_name()
       << ": requirement `" << expr << "` failed: " << msg;
    throw ContractError(os.str());
}

}  // namespace swh::detail

#pragma once

// Leveled contract subsystem (DESIGN.md "Static analysis & contracts").
//
// Three levels, from always-on to audit-only:
//
//   SWH_CHECK(cond, msg)       always on, every build type. For cheap
//                              preconditions and state-machine guards on
//                              paths driven by untrusted input (configs,
//                              files, protocol messages).
//   SWH_DCHECK(cond, msg)      debug builds (NDEBUG unset) and SWH_AUDIT
//                              builds. For checks too hot for release —
//                              per-subject emit accounting, per-event
//                              bookkeeping.
//   SWH_INVARIANT(cond, msg)   SWH_AUDIT builds only (cmake -DSWH_AUDIT=ON).
//                              For whole-structure sweeps wired in via
//                              SWH_AUDIT_SWEEP after every mutation.
//
// The _EQ/_NE/_LT/_LE/_GT/_GE comparison forms capture both operands'
// values into the failure report, so a violation message shows what the
// state actually was, not just that the comparison failed.
//
// Failures throw swh::check::CheckFailure (a swh::ContractError, so all
// existing catch sites keep working) carrying a structured FailureReport:
// expression, file:line, function, message, captured operands, and the
// active PE/task ids when the failing thread is inside a
// swh::check::ScopedContext (the runtime's slave loop and the scheduler's
// event entry points install one).

#include <cstdint>
#include <sstream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace swh::check {

/// One captured operand: the source expression and its printed value.
struct Operand {
    std::string expr;
    std::string value;
};

/// Everything known about a failed check, machine-readable.
struct FailureReport {
    std::string expression;   ///< the checked condition, verbatim
    std::string file;
    unsigned line = 0;
    std::string function;
    std::string message;
    std::vector<Operand> operands;  ///< comparison forms: lhs then rhs
    std::int64_t pe = -1;     ///< active slave id, -1 when none
    std::int64_t task = -1;   ///< active task id, -1 when none

    /// Human-readable rendering (what CheckFailure::what() returns).
    std::string to_string() const;
};

/// Thrown by every SWH_CHECK/SWH_DCHECK/SWH_INVARIANT violation.
class CheckFailure : public ContractError {
public:
    explicit CheckFailure(FailureReport report);
    const FailureReport& report() const { return report_; }

private:
    FailureReport report_;
};

/// Installs "PE p is working on task t" into thread-local storage for
/// the lifetime of the scope; nested scopes shadow and restore. Failure
/// reports raised on this thread carry the innermost active ids.
class ScopedContext {
public:
    ScopedContext(std::int64_t pe, std::int64_t task);
    ~ScopedContext();

    ScopedContext(const ScopedContext&) = delete;
    ScopedContext& operator=(const ScopedContext&) = delete;

private:
    std::int64_t saved_pe_;
    std::int64_t saved_task_;
};

/// The innermost active context of the calling thread ({-1, -1} = none).
std::pair<std::int64_t, std::int64_t> current_context();

namespace detail {

/// Prints a value if it is ostream-streamable, "<unprintable>" otherwise
/// (char-like integers print numerically so residue codes stay legible).
template <class T>
std::string repr(const T& v) {
    if constexpr (std::is_same_v<std::decay_t<T>, bool>) {
        return v ? "true" : "false";
    } else if constexpr (std::is_integral_v<std::decay_t<T>>) {
        return std::to_string(static_cast<std::int64_t>(v));
    } else if constexpr (std::is_enum_v<std::decay_t<T>>) {
        return std::to_string(static_cast<std::int64_t>(
            static_cast<std::underlying_type_t<std::decay_t<T>>>(v)));
    } else {
        std::ostringstream os;
        if constexpr (requires(std::ostream& o, const T& x) { o << x; }) {
            os << v;
        } else {
            os << "<unprintable>";
        }
        return os.str();
    }
}

[[noreturn]] void fail(const char* expression, const char* file,
                       unsigned line, const char* function,
                       const char* message,
                       std::vector<Operand> operands = {});

template <class A, class B>
[[noreturn]] void fail_cmp(const char* expression, const char* file,
                           unsigned line, const char* function,
                           const char* message, const char* lhs_expr,
                           const A& lhs, const char* rhs_expr, const B& rhs) {
    fail(expression, file, line, function, message,
         {Operand{lhs_expr, repr(lhs)}, Operand{rhs_expr, repr(rhs)}});
}

}  // namespace detail

/// True when SWH_DCHECK compiles to a real check in this build.
constexpr bool dchecks_enabled() {
#if defined(SWH_AUDIT) || !defined(NDEBUG)
    return true;
#else
    return false;
#endif
}

/// True when SWH_INVARIANT / SWH_AUDIT_SWEEP are live in this build.
constexpr bool audit_enabled() {
#if defined(SWH_AUDIT)
    return true;
#else
    return false;
#endif
}

}  // namespace swh::check

#define SWH_CHECK(cond, msg)                                              \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::swh::check::detail::fail(#cond, __FILE__, __LINE__,         \
                                       __func__, (msg));                  \
        }                                                                 \
    } while (false)

#define SWH_CHECK_CMP_(op, a, b, msg)                                     \
    do {                                                                  \
        /* NOLINTNEXTLINE(bugprone-macro-parentheses): id-expressions */  \
        const auto& swh_check_a_ = (a);                                   \
        const auto& swh_check_b_ = (b);                                   \
        if (!(swh_check_a_ op swh_check_b_)) {                            \
            ::swh::check::detail::fail_cmp(#a " " #op " " #b, __FILE__,   \
                                           __LINE__, __func__, (msg), #a, \
                                           swh_check_a_, #b,              \
                                           swh_check_b_);                 \
        }                                                                 \
    } while (false)

#define SWH_CHECK_EQ(a, b, msg) SWH_CHECK_CMP_(==, a, b, msg)
#define SWH_CHECK_NE(a, b, msg) SWH_CHECK_CMP_(!=, a, b, msg)
#define SWH_CHECK_LT(a, b, msg) SWH_CHECK_CMP_(<, a, b, msg)
#define SWH_CHECK_LE(a, b, msg) SWH_CHECK_CMP_(<=, a, b, msg)
#define SWH_CHECK_GT(a, b, msg) SWH_CHECK_CMP_(>, a, b, msg)
#define SWH_CHECK_GE(a, b, msg) SWH_CHECK_CMP_(>=, a, b, msg)

#if defined(SWH_AUDIT) || !defined(NDEBUG)
#define SWH_DCHECK(cond, msg) SWH_CHECK(cond, msg)
#define SWH_DCHECK_EQ(a, b, msg) SWH_CHECK_EQ(a, b, msg)
#define SWH_DCHECK_NE(a, b, msg) SWH_CHECK_NE(a, b, msg)
#define SWH_DCHECK_LE(a, b, msg) SWH_CHECK_LE(a, b, msg)
#define SWH_DCHECK_GE(a, b, msg) SWH_CHECK_GE(a, b, msg)
#else
#define SWH_DCHECK(cond, msg) \
    do {                      \
    } while (false)
#define SWH_DCHECK_EQ(a, b, msg) SWH_DCHECK(true, msg)
#define SWH_DCHECK_NE(a, b, msg) SWH_DCHECK(true, msg)
#define SWH_DCHECK_LE(a, b, msg) SWH_DCHECK(true, msg)
#define SWH_DCHECK_GE(a, b, msg) SWH_DCHECK(true, msg)
#endif

#if defined(SWH_AUDIT)
#define SWH_INVARIANT(cond, msg) SWH_CHECK(cond, msg)
/// Runs `stmt` (typically `check_invariants()`) only in audit builds —
/// the hook point for whole-structure sweeps after each mutation.
#define SWH_AUDIT_SWEEP(stmt) \
    do {                      \
        stmt;                 \
    } while (false)
#else
#define SWH_INVARIANT(cond, msg) \
    do {                         \
    } while (false)
#define SWH_AUDIT_SWEEP(stmt) \
    do {                      \
    } while (false)
#endif

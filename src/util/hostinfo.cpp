#include "util/hostinfo.hpp"

#include <fstream>
#include <thread>

#include "util/str.hpp"

#ifndef SWH_GIT_SHA
#define SWH_GIT_SHA "unknown"
#endif
#ifndef SWH_BUILD_FLAGS
#define SWH_BUILD_FLAGS ""
#endif

namespace swh {

namespace {

std::string cpu_model_name() {
    std::ifstream in("/proc/cpuinfo");
    std::string line;
    while (std::getline(in, line)) {
        // x86 says "model name", some ARM kernels say "Processor".
        if (starts_with(line, "model name") ||
            starts_with(line, "Processor")) {
            const auto colon = line.find(':');
            if (colon != std::string::npos) {
                return std::string(trim(line.substr(colon + 1)));
            }
        }
    }
    return "";
}

std::string compiler_id() {
#if defined(__clang__)
    return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
    return std::string("gcc ") + __VERSION__;
#else
    return "unknown";
#endif
}

}  // namespace

HostInfo host_info() {
    HostInfo info;
    info.cpu_model = cpu_model_name();
    info.hardware_threads = std::thread::hardware_concurrency();
    info.compiler = compiler_id();
    info.git_sha = SWH_GIT_SHA;
    info.build_flags = SWH_BUILD_FLAGS;
    return info;
}

}  // namespace swh

#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace swh {

/// Minimal declarative command-line parser for the example tools.
/// Supports `--flag`, `--key value`, `--key=value`, and positional
/// arguments; unknown options throw. Not a general-purpose library —
/// just enough for reproducible tool invocations.
class ArgParser {
public:
    ArgParser(std::string program, std::string description);

    /// Declares a value option. `fallback` doubles as the help default.
    void add_option(const std::string& name, const std::string& help,
                    std::string fallback);

    /// Declares a boolean flag (default false).
    void add_flag(const std::string& name, const std::string& help);

    /// Declares a positional argument; required unless a fallback is
    /// given. Positionals fill in declaration order.
    void add_positional(const std::string& name, const std::string& help,
                        std::optional<std::string> fallback = std::nullopt);

    /// Parses argv. Throws ContractError on unknown/malformed input.
    /// Returns false if --help was requested (help text already printed
    /// to stdout).
    bool parse(int argc, const char* const* argv);

    const std::string& get(const std::string& name) const;
    long long get_int(const std::string& name) const;
    double get_double(const std::string& name) const;
    bool get_flag(const std::string& name) const;

    std::string help() const;

private:
    struct Option {
        std::string help;
        std::string value;
        bool is_flag = false;
        bool seen = false;
    };
    struct Positional {
        std::string name;
        std::string help;
        std::optional<std::string> value;
    };

    std::string program_;
    std::string description_;
    std::map<std::string, Option> options_;
    std::vector<Positional> positionals_;
};

}  // namespace swh

#include "util/args.hpp"

#include <cstdio>
#include <sstream>

#include "util/error.hpp"
#include "util/str.hpp"

namespace swh {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::add_option(const std::string& name, const std::string& help,
                           std::string fallback) {
    SWH_REQUIRE(options_.find(name) == options_.end(), "duplicate option");
    options_[name] = Option{help, std::move(fallback), false, false};
}

void ArgParser::add_flag(const std::string& name, const std::string& help) {
    SWH_REQUIRE(options_.find(name) == options_.end(), "duplicate flag");
    options_[name] = Option{help, "false", true, false};
}

void ArgParser::add_positional(const std::string& name,
                               const std::string& help,
                               std::optional<std::string> fallback) {
    positionals_.push_back(Positional{name, help, std::move(fallback)});
}

bool ArgParser::parse(int argc, const char* const* argv) {
    std::size_t next_positional = 0;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(help().c_str(), stdout);
            return false;
        }
        if (starts_with(arg, "--")) {
            std::string name = arg.substr(2);
            std::string value;
            bool has_value = false;
            if (const std::size_t eq = name.find('='); eq != std::string::npos) {
                value = name.substr(eq + 1);
                name = name.substr(0, eq);
                has_value = true;
            }
            const auto it = options_.find(name);
            SWH_REQUIRE(it != options_.end(),
                        ("unknown option --" + name).c_str());
            Option& opt = it->second;
            if (opt.is_flag) {
                SWH_REQUIRE(!has_value, "flags do not take values");
                opt.value = "true";
            } else if (has_value) {
                opt.value = std::move(value);
            } else {
                SWH_REQUIRE(i + 1 < argc, "option missing its value");
                opt.value = argv[++i];
            }
            opt.seen = true;
        } else {
            SWH_REQUIRE(next_positional < positionals_.size(),
                        "unexpected positional argument");
            positionals_[next_positional++].value = std::move(arg);
        }
    }
    for (const Positional& p : positionals_) {
        SWH_REQUIRE(p.value.has_value(),
                    ("missing required argument: " + p.name).c_str());
    }
    return true;
}

const std::string& ArgParser::get(const std::string& name) const {
    if (const auto it = options_.find(name); it != options_.end()) {
        return it->second.value;
    }
    for (const Positional& p : positionals_) {
        if (p.name == name) {
            SWH_REQUIRE(p.value.has_value(), "positional not set");
            return *p.value;
        }
    }
    SWH_REQUIRE(false, ("unknown argument name: " + name).c_str());
    static const std::string empty;
    return empty;
}

long long ArgParser::get_int(const std::string& name) const {
    const std::string& v = get(name);
    try {
        std::size_t pos = 0;
        const long long out = std::stoll(v, &pos);
        SWH_REQUIRE(pos == v.size(), "trailing junk in integer argument");
        return out;
    } catch (const std::invalid_argument&) {
        throw ContractError("argument " + name + " is not an integer: " + v);
    } catch (const std::out_of_range&) {
        throw ContractError("argument " + name + " out of range: " + v);
    }
}

double ArgParser::get_double(const std::string& name) const {
    const std::string& v = get(name);
    try {
        std::size_t pos = 0;
        const double out = std::stod(v, &pos);
        SWH_REQUIRE(pos == v.size(), "trailing junk in numeric argument");
        return out;
    } catch (const std::invalid_argument&) {
        throw ContractError("argument " + name + " is not a number: " + v);
    }
}

bool ArgParser::get_flag(const std::string& name) const {
    return get(name) == "true";
}

std::string ArgParser::help() const {
    std::ostringstream os;
    os << program_ << " — " << description_ << "\n\nusage: " << program_;
    for (const Positional& p : positionals_) {
        os << (p.value ? " [" + p.name + "]" : " <" + p.name + ">");
    }
    os << " [options]\n\narguments:\n";
    for (const Positional& p : positionals_) {
        os << "  " << p.name << "  " << p.help;
        if (p.value) os << " (default: " << *p.value << ")";
        os << '\n';
    }
    os << "\noptions:\n";
    for (const auto& [name, opt] : options_) {
        os << "  --" << name;
        if (!opt.is_flag) os << " <value>";
        os << "  " << opt.help;
        if (!opt.is_flag) os << " (default: " << opt.value << ")";
        os << '\n';
    }
    return os.str();
}

}  // namespace swh

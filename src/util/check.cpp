#include "util/check.hpp"

namespace swh::check {

namespace {

thread_local std::int64_t tls_pe = -1;
thread_local std::int64_t tls_task = -1;

}  // namespace

std::string FailureReport::to_string() const {
    std::ostringstream os;
    os << file << ':' << line << " in " << function << ": check `"
       << expression << "` failed: " << message;
    for (const Operand& op : operands) {
        os << "\n  " << op.expr << " = " << op.value;
    }
    if (pe >= 0 || task >= 0) {
        os << "\n  context:";
        if (pe >= 0) os << " pe=" << pe;
        if (task >= 0) os << " task=" << task;
    }
    return os.str();
}

CheckFailure::CheckFailure(FailureReport report)
    : ContractError(report.to_string()), report_(std::move(report)) {}

ScopedContext::ScopedContext(std::int64_t pe, std::int64_t task)
    : saved_pe_(tls_pe), saved_task_(tls_task) {
    tls_pe = pe;
    tls_task = task;
}

ScopedContext::~ScopedContext() {
    tls_pe = saved_pe_;
    tls_task = saved_task_;
}

std::pair<std::int64_t, std::int64_t> current_context() {
    return {tls_pe, tls_task};
}

namespace detail {

void fail(const char* expression, const char* file, unsigned line,
          const char* function, const char* message,
          std::vector<Operand> operands) {
    FailureReport report;
    report.expression = expression;
    report.file = file;
    report.line = line;
    report.function = function;
    report.message = message;
    report.operands = std::move(operands);
    report.pe = tls_pe;
    report.task = tls_task;
    throw CheckFailure(std::move(report));
}

}  // namespace detail

}  // namespace swh::check

#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace swh {

/// Welford running mean/variance accumulator.
class RunningStats {
public:
    void add(double x);

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double variance() const;  ///< sample variance (n-1 denominator)
    double stdev() const;
    double min() const { return min_; }
    double max() const { return max_; }

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs);

/// Weighted mean of xs with the given weights. Requires equal sizes and a
/// positive weight total.
double weighted_mean(std::span<const double> xs, std::span<const double> ws);

/// Mean where the newest sample (last element) carries the largest weight,
/// decaying linearly to 1 for the oldest: weights n, n-1, ..., 1 from
/// newest to oldest. This is the "weighted mean of the last Omega
/// notifications" used by the PSS policy (paper SS IV-A.2): small Omega =>
/// only recent history matters. 0 for an empty span (like mean), so
/// summary paths need no emptiness pre-check.
double recency_weighted_mean(std::span<const double> xs);

/// Linear interpolation percentile (p in [0,100]) of an unsorted sample.
/// 0 for an empty sample (like mean); the single element for size 1.
double percentile(std::vector<double> xs, double p);

/// Geometric mean of strictly positive samples.
double geomean(std::span<const double> xs);

}  // namespace swh

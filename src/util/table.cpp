#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace swh {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
    SWH_REQUIRE(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
    SWH_REQUIRE(cells.size() == header_.size(),
                "row width must match header width");
    rows_.push_back({std::move(cells), pending_rule_});
    pending_rule_ = false;
}

void TextTable::add_rule() { pending_rule_ = true; }

std::string TextTable::render() const {
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const Row& row : rows_)
        for (std::size_t c = 0; c < row.cells.size(); ++c)
            widths[c] = std::max(widths[c], row.cells[c].size());

    std::ostringstream os;
    auto hline = [&] {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            os << '+' << std::string(widths[c] + 2, '-');
        }
        os << "+\n";
    };
    auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << "| ";
            const std::size_t pad = widths[c] - cells[c].size();
            if (c == 0) {
                os << cells[c] << std::string(pad, ' ');
            } else {
                os << std::string(pad, ' ') << cells[c];
            }
            os << ' ';
        }
        os << "|\n";
    };

    hline();
    emit(header_);
    hline();
    for (const Row& row : rows_) {
        if (row.rule_before) hline();
        emit(row.cells);
    }
    hline();
    return os.str();
}

void TextTable::print(std::ostream& os) const { os << render(); }

void CsvWriter::row(const std::vector<std::string>& cells) {
    bool first = true;
    for (const std::string& cell : cells) {
        if (!first) os_ << ',';
        first = false;
        const bool needs_quote =
            cell.find_first_of(",\"\n") != std::string::npos;
        if (needs_quote) {
            os_ << '"';
            for (char ch : cell) {
                if (ch == '"') os_ << '"';
                os_ << ch;
            }
            os_ << '"';
        } else {
            os_ << cell;
        }
    }
    os_ << '\n';
}

}  // namespace swh

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace swh {

/// Splits on a single delimiter; adjacent delimiters yield empty fields.
std::vector<std::string> split(std::string_view s, char delim);

/// Splits on runs of ASCII whitespace; never yields empty fields.
std::vector<std::string> split_ws(std::string_view s);

std::string_view trim(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);

std::string to_upper(std::string_view s);

/// "1234567" -> "1,234,567" for human-readable bench output.
std::string with_thousands(long long value);

/// Fixed-point formatting without iostream ceremony.
std::string format_double(double value, int decimals);

/// Renders seconds as "1h02m03s" / "2m03s" / "4.21s" for reports.
std::string format_duration(double seconds);

}  // namespace swh

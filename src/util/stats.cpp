#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace swh {

void RunningStats::add(double x) {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
    if (n_ < 2) return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stdev() const { return std::sqrt(variance()); }

double mean(std::span<const double> xs) {
    if (xs.empty()) return 0.0;
    double sum = 0.0;
    for (double x : xs) sum += x;
    return sum / static_cast<double>(xs.size());
}

double weighted_mean(std::span<const double> xs, std::span<const double> ws) {
    SWH_REQUIRE(xs.size() == ws.size(), "values/weights size mismatch");
    SWH_REQUIRE(!xs.empty(), "weighted_mean of empty sample");
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        SWH_REQUIRE(ws[i] >= 0.0, "weights must be non-negative");
        num += xs[i] * ws[i];
        den += ws[i];
    }
    SWH_REQUIRE(den > 0.0, "weight total must be positive");
    return num / den;
}

double recency_weighted_mean(std::span<const double> xs) {
    if (xs.empty()) return 0.0;
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double w = static_cast<double>(i + 1);  // oldest=1 .. newest=n
        num += xs[i] * w;
        den += w;
    }
    return num / den;
}

double percentile(std::vector<double> xs, double p) {
    SWH_REQUIRE(p >= 0.0 && p <= 100.0, "percentile p out of [0,100]");
    if (xs.empty()) return 0.0;
    std::sort(xs.begin(), xs.end());
    if (xs.size() == 1) return xs.front();
    const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

double geomean(std::span<const double> xs) {
    SWH_REQUIRE(!xs.empty(), "geomean of empty sample");
    double log_sum = 0.0;
    for (double x : xs) {
        SWH_REQUIRE(x > 0.0, "geomean requires positive samples");
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

}  // namespace swh

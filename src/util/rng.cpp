#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace swh {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
}

/// splitmix64: used only to expand the seed into the xoshiro state.
constexpr std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& s : s_) s = splitmix64(x);
    // All-zero state is the one invalid xoshiro state; splitmix64 cannot
    // produce four zero outputs in a row, but keep the guard explicit.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
    SWH_REQUIRE(bound > 0, "bound must be positive");
    // Lemire's nearly-divisionless method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
        const std::uint64_t threshold = -bound % bound;
        while (lo < threshold) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            lo = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
    SWH_REQUIRE(lo <= hi, "range requires lo <= hi");
    const auto span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() {
    // 53 high bits -> double in [0,1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
}

double Rng::normal() {
    // Box-Muller; discard the second variate to keep the stream simple.
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
}

std::size_t Rng::weighted_index(const double* weights, std::size_t n) {
    SWH_REQUIRE(n > 0, "weighted_index needs at least one weight");
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        SWH_REQUIRE(weights[i] >= 0.0, "weights must be non-negative");
        total += weights[i];
    }
    SWH_REQUIRE(total > 0.0, "weights must not all be zero");
    double r = uniform() * total;
    for (std::size_t i = 0; i + 1 < n; ++i) {
        if (r < weights[i]) return i;
        r -= weights[i];
    }
    return n - 1;
}

Rng Rng::split() {
    Rng child;
    // Seed the child from two successive outputs so sibling splits differ.
    std::uint64_t mix = next();
    mix ^= rotl(next(), 23);
    child.reseed(mix);
    return child;
}

}  // namespace swh

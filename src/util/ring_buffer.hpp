#pragma once

#include <cstddef>
#include <vector>

#include "util/error.hpp"

namespace swh {

/// Fixed-capacity FIFO that overwrites the oldest element when full.
/// Used for the per-slave progress-notification window (the paper's
/// Omega history): only the newest `capacity` samples are retained.
template <typename T>
class RingBuffer {
public:
    explicit RingBuffer(std::size_t capacity) : buf_(capacity) {
        SWH_REQUIRE(capacity > 0, "RingBuffer capacity must be positive");
    }

    std::size_t capacity() const { return buf_.size(); }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    bool full() const { return size_ == buf_.size(); }

    void push(const T& value) {
        buf_[(head_ + size_) % buf_.size()] = value;
        if (size_ == buf_.size()) {
            head_ = (head_ + 1) % buf_.size();  // drop the oldest
        } else {
            ++size_;
        }
    }

    /// i = 0 is the oldest retained element; i = size()-1 the newest.
    const T& operator[](std::size_t i) const {
        SWH_REQUIRE(i < size_, "RingBuffer index out of range");
        return buf_[(head_ + i) % buf_.size()];
    }

    const T& newest() const {
        SWH_REQUIRE(size_ > 0, "RingBuffer is empty");
        return (*this)[size_ - 1];
    }

    /// Copies contents oldest-to-newest into a flat vector.
    std::vector<T> to_vector() const {
        std::vector<T> out;
        out.reserve(size_);
        for (std::size_t i = 0; i < size_; ++i) out.push_back((*this)[i]);
        return out;
    }

    void clear() {
        head_ = 0;
        size_ = 0;
    }

private:
    std::vector<T> buf_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

}  // namespace swh

#pragma once

namespace swh::simd {

/// Instruction-set levels usable by the striped kernels. `Scalar` is a
/// lane-faithful emulation of the vector code (same algorithm, plain
/// loops) used as a portability fallback and as a test reference.
enum class IsaLevel { Scalar, SSE2, AVX2, AVX512 };

/// Best level compiled in AND supported by the running CPU.
IsaLevel best_supported();

/// True if `level` can execute on this build + CPU.
bool is_supported(IsaLevel level);

const char* to_string(IsaLevel level);

}  // namespace swh::simd

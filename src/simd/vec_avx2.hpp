#pragma once

#if defined(__AVX2__)

#include <immintrin.h>

#include <cstdint>

namespace swh::simd {

namespace detail {

/// Shifts a 256-bit register left by `Bytes` across the 128-bit lane
/// boundary (VPALIGNR only shifts within lanes). The incoming low lane is
/// zero, so lane 0 of the result receives 0 — exactly what the striped
/// rotation needs.
template <int Bytes>
inline __m256i shl_256(__m256i v) {
    // t = [ low(v), 0 ] : selector 0x08 -> dst_lo = zero, dst_hi = src_lo.
    const __m256i t = _mm256_permute2x128_si256(v, v, 0x08);
    return _mm256_alignr_epi8(v, t, 16 - Bytes);
}

}  // namespace detail

/// 32 unsigned 8-bit lanes (AVX2). See vec_scalar.hpp for the contract.
struct U8x32 {
    using lane_type = std::uint8_t;
    static constexpr int kLanes = 32;

    __m256i v;

    static U8x32 zero() { return {_mm256_setzero_si256()}; }

    static U8x32 splat(std::uint8_t x) {
        return {_mm256_set1_epi8(static_cast<char>(x))};
    }

    static U8x32 load(const std::uint8_t* p) {
        return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
    }

    void store(std::uint8_t* p) const {
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
    }

    friend U8x32 adds(U8x32 a, U8x32 b) {
        return {_mm256_adds_epu8(a.v, b.v)};
    }
    friend U8x32 subs(U8x32 a, U8x32 b) {
        return {_mm256_subs_epu8(a.v, b.v)};
    }
    friend U8x32 vmax(U8x32 a, U8x32 b) { return {_mm256_max_epu8(a.v, b.v)}; }

    U8x32 shl_lane() const { return {detail::shl_256<1>(v)}; }

    friend bool any_gt(U8x32 a, U8x32 b) {
        const __m256i diff = _mm256_subs_epu8(a.v, b.v);
        const __m256i eq0 = _mm256_cmpeq_epi8(diff, _mm256_setzero_si256());
        return _mm256_movemask_epi8(eq0) != -1;
    }

    friend std::uint64_t ge_mask(U8x32 a, U8x32 b) {
        // Unsigned "a >= b" == max(a, b) == a, lane-wise.
        const __m256i eq = _mm256_cmpeq_epi8(_mm256_max_epu8(a.v, b.v), a.v);
        return static_cast<std::uint64_t>(
            static_cast<unsigned>(_mm256_movemask_epi8(eq)));
    }

    std::uint8_t hmax() const {
        const __m128i lo = _mm256_castsi256_si128(v);
        const __m128i hi = _mm256_extracti128_si256(v, 1);
        __m128i m = _mm_max_epu8(lo, hi);
        m = _mm_max_epu8(m, _mm_srli_si128(m, 8));
        m = _mm_max_epu8(m, _mm_srli_si128(m, 4));
        m = _mm_max_epu8(m, _mm_srli_si128(m, 2));
        m = _mm_max_epu8(m, _mm_srli_si128(m, 1));
        return static_cast<std::uint8_t>(_mm_cvtsi128_si32(m) & 0xFF);
    }

    /// Per-lane gather from a 32-entry byte table (indices < 32): each
    /// 16-byte table half is duplicated across both 128-bit lanes, then
    /// VPSHUFB results are selected on index bit 4.
    friend U8x32 lookup32(const std::uint8_t* table, U8x32 idx) {
        const __m256i tbl =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(table));
        const __m256i lo = _mm256_permute4x64_epi64(tbl, 0x44);
        const __m256i hi = _mm256_permute4x64_epi64(tbl, 0xEE);
        const __m256i sel = _mm256_cmpgt_epi8(idx.v, _mm256_set1_epi8(15));
        return {_mm256_blendv_epi8(_mm256_shuffle_epi8(lo, idx.v),
                                   _mm256_shuffle_epi8(hi, idx.v), sel)};
    }
};

/// 16 signed 16-bit lanes (AVX2).
struct I16x16 {
    using lane_type = std::int16_t;
    static constexpr int kLanes = 16;

    __m256i v;

    static I16x16 zero() { return {_mm256_setzero_si256()}; }

    static I16x16 splat(std::int16_t x) { return {_mm256_set1_epi16(x)}; }

    static I16x16 load(const std::int16_t* p) {
        return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
    }

    void store(std::int16_t* p) const {
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
    }

    friend I16x16 adds(I16x16 a, I16x16 b) {
        return {_mm256_adds_epi16(a.v, b.v)};
    }
    friend I16x16 subs(I16x16 a, I16x16 b) {
        return {_mm256_subs_epi16(a.v, b.v)};
    }
    friend I16x16 vmax(I16x16 a, I16x16 b) {
        return {_mm256_max_epi16(a.v, b.v)};
    }

    I16x16 shl_lane() const { return {detail::shl_256<2>(v)}; }

    friend bool any_gt(I16x16 a, I16x16 b) {
        return _mm256_movemask_epi8(_mm256_cmpgt_epi16(a.v, b.v)) != 0;
    }

    std::int16_t hmax() const {
        const __m128i lo = _mm256_castsi256_si128(v);
        const __m128i hi = _mm256_extracti128_si256(v, 1);
        __m128i m = _mm_max_epi16(lo, hi);
        m = _mm_max_epi16(m, _mm_srli_si128(m, 8));
        m = _mm_max_epi16(m, _mm_srli_si128(m, 4));
        m = _mm_max_epi16(m, _mm_srli_si128(m, 2));
        return static_cast<std::int16_t>(_mm_cvtsi128_si32(m) & 0xFFFF);
    }
};

/// Zero-extends lanes 0..15 of a u8 vector to i16, in lane order.
inline I16x16 widen_lo(U8x32 a) {
    return {_mm256_cvtepu8_epi16(_mm256_castsi256_si128(a.v))};
}

/// Zero-extends lanes 16..31.
inline I16x16 widen_hi(U8x32 a) {
    return {_mm256_cvtepu8_epi16(_mm256_extracti128_si256(a.v, 1))};
}

}  // namespace swh::simd

#endif  // __AVX2__

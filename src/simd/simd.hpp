#pragma once

/// Umbrella header for the SIMD abstraction used by the striped kernels.

#include "simd/arch.hpp"      // IWYU pragma: export
#include "simd/vec_scalar.hpp"  // IWYU pragma: export
#if defined(__SSE2__)
#include "simd/vec_sse2.hpp"  // IWYU pragma: export
#endif
#if defined(__AVX2__)
#include "simd/vec_avx2.hpp"  // IWYU pragma: export
#endif
#if defined(__AVX512BW__)
#include "simd/vec_avx512.hpp"  // IWYU pragma: export
#endif

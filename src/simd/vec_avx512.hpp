#pragma once

#if defined(__AVX512BW__)

#include <immintrin.h>

#include <cstdint>

namespace swh::simd {

namespace detail512 {

/// Shifts a 512-bit register left by `Bytes` (< 16) across 128-bit lane
/// boundaries: VPALIGNR is per-lane, so feed it each lane's predecessor
/// (with zeros entering lane 0).
template <int Bytes>
inline __m512i shl_512(__m512i v) {
    // prev = [0, lane0, lane1, lane2]: shuffle lanes down by one, zeroing
    // lane 0 via the mask (16 dwords; lane 0 = dwords 0..3).
    const __m512i prev = _mm512_maskz_shuffle_i32x4(
        0xFFF0, v, v, _MM_SHUFFLE(2, 1, 0, 0));
    return _mm512_alignr_epi8(v, prev, 16 - Bytes);
}

}  // namespace detail512

/// 64 unsigned 8-bit lanes (AVX-512BW). Interface contract as in
/// vec_scalar.hpp.
struct U8x64 {
    using lane_type = std::uint8_t;
    static constexpr int kLanes = 64;

    __m512i v;

    static U8x64 zero() { return {_mm512_setzero_si512()}; }

    static U8x64 splat(std::uint8_t x) {
        return {_mm512_set1_epi8(static_cast<char>(x))};
    }

    static U8x64 load(const std::uint8_t* p) {
        return {_mm512_loadu_si512(p)};
    }

    void store(std::uint8_t* p) const { _mm512_storeu_si512(p, v); }

    friend U8x64 adds(U8x64 a, U8x64 b) {
        return {_mm512_adds_epu8(a.v, b.v)};
    }
    friend U8x64 subs(U8x64 a, U8x64 b) {
        return {_mm512_subs_epu8(a.v, b.v)};
    }
    friend U8x64 vmax(U8x64 a, U8x64 b) {
        return {_mm512_max_epu8(a.v, b.v)};
    }

    U8x64 shl_lane() const { return {detail512::shl_512<1>(v)}; }

    friend bool any_gt(U8x64 a, U8x64 b) {
        return _mm512_cmpgt_epu8_mask(a.v, b.v) != 0;
    }

    friend std::uint64_t ge_mask(U8x64 a, U8x64 b) {
        return _mm512_cmpge_epu8_mask(a.v, b.v);
    }

    std::uint8_t hmax() const {
        const __m256i lo = _mm512_castsi512_si256(v);
        const __m256i hi = _mm512_extracti64x4_epi64(v, 1);
        __m256i m256 = _mm256_max_epu8(lo, hi);
        __m128i m = _mm_max_epu8(_mm256_castsi256_si128(m256),
                                 _mm256_extracti128_si256(m256, 1));
        m = _mm_max_epu8(m, _mm_srli_si128(m, 8));
        m = _mm_max_epu8(m, _mm_srli_si128(m, 4));
        m = _mm_max_epu8(m, _mm_srli_si128(m, 2));
        m = _mm_max_epu8(m, _mm_srli_si128(m, 1));
        return static_cast<std::uint8_t>(_mm_cvtsi128_si32(m) & 0xFF);
    }

    /// Per-lane gather from a 32-entry byte table (indices < 32). With
    /// AVX-512VBMI this is a single VPERMB (the table broadcast twice
    /// fills all 64 permute slots; indices stay below 32 so only the
    /// first copy is ever selected). The BW-only fallback broadcasts
    /// each 16-byte half per 128-bit lane and selects on index bit 4.
    friend U8x64 lookup32(const std::uint8_t* table, U8x64 idx) {
#if defined(__AVX512VBMI__)
        const __m512i tbl = _mm512_broadcast_i64x4(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(table)));
        return {_mm512_permutexvar_epi8(idx.v, tbl)};
#else
        const __m512i lo = _mm512_broadcast_i32x4(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(table)));
        const __m512i hi = _mm512_broadcast_i32x4(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(table + 16)));
        const __mmask64 sel =
            _mm512_test_epi8_mask(idx.v, _mm512_set1_epi8(0x10));
        return {_mm512_mask_blend_epi8(sel, _mm512_shuffle_epi8(lo, idx.v),
                                       _mm512_shuffle_epi8(hi, idx.v))};
#endif
    }
};

/// 32 signed 16-bit lanes (AVX-512BW).
struct I16x32 {
    using lane_type = std::int16_t;
    static constexpr int kLanes = 32;

    __m512i v;

    static I16x32 zero() { return {_mm512_setzero_si512()}; }

    static I16x32 splat(std::int16_t x) { return {_mm512_set1_epi16(x)}; }

    static I16x32 load(const std::int16_t* p) {
        return {_mm512_loadu_si512(p)};
    }

    void store(std::int16_t* p) const { _mm512_storeu_si512(p, v); }

    friend I16x32 adds(I16x32 a, I16x32 b) {
        return {_mm512_adds_epi16(a.v, b.v)};
    }
    friend I16x32 subs(I16x32 a, I16x32 b) {
        return {_mm512_subs_epi16(a.v, b.v)};
    }
    friend I16x32 vmax(I16x32 a, I16x32 b) {
        return {_mm512_max_epi16(a.v, b.v)};
    }

    I16x32 shl_lane() const { return {detail512::shl_512<2>(v)}; }

    friend bool any_gt(I16x32 a, I16x32 b) {
        return _mm512_cmpgt_epi16_mask(a.v, b.v) != 0;
    }

    std::int16_t hmax() const {
        const __m256i lo = _mm512_castsi512_si256(v);
        const __m256i hi = _mm512_extracti64x4_epi64(v, 1);
        __m256i m256 = _mm256_max_epi16(lo, hi);
        __m128i m = _mm_max_epi16(_mm256_castsi256_si128(m256),
                                  _mm256_extracti128_si256(m256, 1));
        m = _mm_max_epi16(m, _mm_srli_si128(m, 8));
        m = _mm_max_epi16(m, _mm_srli_si128(m, 4));
        m = _mm_max_epi16(m, _mm_srli_si128(m, 2));
        return static_cast<std::int16_t>(_mm_cvtsi128_si32(m) & 0xFFFF);
    }
};

/// Zero-extends lanes 0..31 of a u8 vector to i16, in lane order.
inline I16x32 widen_lo(U8x64 a) {
    return {_mm512_cvtepu8_epi16(_mm512_castsi512_si256(a.v))};
}

/// Zero-extends lanes 32..63.
inline I16x32 widen_hi(U8x64 a) {
    return {_mm512_cvtepu8_epi16(_mm512_extracti64x4_epi64(a.v, 1))};
}

}  // namespace swh::simd

#endif  // __AVX512BW__

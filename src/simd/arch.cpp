#include "simd/arch.hpp"

namespace swh::simd {

bool is_supported(IsaLevel level) {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_cpu_init();
#endif
    switch (level) {
        case IsaLevel::Scalar:
            return true;
        case IsaLevel::SSE2:
#if defined(__SSE2__)
            return __builtin_cpu_supports("sse2");
#else
            return false;
#endif
        case IsaLevel::AVX2:
#if defined(__AVX2__)
            return __builtin_cpu_supports("avx2");
#else
            return false;
#endif
        case IsaLevel::AVX512:
#if defined(__AVX512BW__)
            return __builtin_cpu_supports("avx512bw");
#else
            return false;
#endif
    }
    return false;
}

IsaLevel best_supported() {
    if (is_supported(IsaLevel::AVX512)) return IsaLevel::AVX512;
    if (is_supported(IsaLevel::AVX2)) return IsaLevel::AVX2;
    if (is_supported(IsaLevel::SSE2)) return IsaLevel::SSE2;
    return IsaLevel::Scalar;
}

const char* to_string(IsaLevel level) {
    switch (level) {
        case IsaLevel::Scalar:
            return "scalar";
        case IsaLevel::SSE2:
            return "sse2";
        case IsaLevel::AVX2:
            return "avx2";
        case IsaLevel::AVX512:
            return "avx512";
    }
    return "?";
}

}  // namespace swh::simd

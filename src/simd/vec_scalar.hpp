#pragma once

#include <algorithm>
#include <array>
#include <cstdint>

namespace swh::simd {

// Lane-faithful scalar emulations of the vector operations the striped
// Smith-Waterman kernels need. These run the *same algorithm* as the
// intrinsic-backed types (including the striped data layout), so they
// double as a reference implementation in tests and as the fallback on
// non-x86 targets.
//
// Shared vector interface (see also vec_sse2.hpp / vec_avx2.hpp):
//   lane_type, kLanes
//   zero(), splat(x), load(p), store(p)
//   adds(a,b)   -- saturating add
//   subs(a,b)   -- saturating subtract
//   vmax(a,b)   -- lane-wise max
//   a.shl_lane() -- shift lanes toward higher index, 0 enters at lane 0
//                   (the striped "previous row" rotation)
//   any_gt(a,b) -- true if a > b in any lane
//   a.hmax()    -- horizontal max
//
// u8 vectors additionally support the inter-sequence kernel ops:
//   lookup32(table, idx) -- per-lane byte gather from a 32-entry table
//                           (every index lane must be < 32)
//   widen_lo(a) / widen_hi(a) -- zero-extend the low/high half of the
//                           lanes to an i16 vector, preserving lane order
//   ge_mask(a,b) -- bit l set iff a >= b (unsigned) in lane l; the
//                   horizontal compare the scan prefilter uses to turn
//                   per-lane score bounds into a survivor mask

template <int N>
struct U8xN {
    using lane_type = std::uint8_t;
    static constexpr int kLanes = N;

    std::array<std::uint8_t, N> lane{};

    static U8xN zero() { return {}; }

    static U8xN splat(std::uint8_t x) {
        U8xN v;
        v.lane.fill(x);
        return v;
    }

    static U8xN load(const std::uint8_t* p) {
        U8xN v;
        std::copy_n(p, N, v.lane.begin());
        return v;
    }

    void store(std::uint8_t* p) const { std::copy_n(lane.begin(), N, p); }

    friend U8xN adds(U8xN a, U8xN b) {
        U8xN r;
        for (int i = 0; i < N; ++i) {
            const int s = int(a.lane[i]) + int(b.lane[i]);
            r.lane[i] = static_cast<std::uint8_t>(std::min(s, 255));
        }
        return r;
    }

    friend U8xN subs(U8xN a, U8xN b) {
        U8xN r;
        for (int i = 0; i < N; ++i) {
            const int s = int(a.lane[i]) - int(b.lane[i]);
            r.lane[i] = static_cast<std::uint8_t>(std::max(s, 0));
        }
        return r;
    }

    friend U8xN vmax(U8xN a, U8xN b) {
        U8xN r;
        for (int i = 0; i < N; ++i) r.lane[i] = std::max(a.lane[i], b.lane[i]);
        return r;
    }

    U8xN shl_lane() const {
        U8xN r;
        r.lane[0] = 0;
        for (int i = 1; i < N; ++i) r.lane[i] = lane[i - 1];
        return r;
    }

    friend bool any_gt(U8xN a, U8xN b) {
        for (int i = 0; i < N; ++i)
            if (a.lane[i] > b.lane[i]) return true;
        return false;
    }

    friend std::uint64_t ge_mask(U8xN a, U8xN b) {
        static_assert(N <= 64, "mask is 64 bits wide");
        std::uint64_t m = 0;
        for (int i = 0; i < N; ++i) {
            if (a.lane[i] >= b.lane[i]) m |= std::uint64_t{1} << i;
        }
        return m;
    }

    std::uint8_t hmax() const {
        return *std::max_element(lane.begin(), lane.end());
    }
};

template <int N>
struct I16xN {
    using lane_type = std::int16_t;
    static constexpr int kLanes = N;

    std::array<std::int16_t, N> lane{};

    static I16xN zero() { return {}; }

    static I16xN splat(std::int16_t x) {
        I16xN v;
        v.lane.fill(x);
        return v;
    }

    static I16xN load(const std::int16_t* p) {
        I16xN v;
        std::copy_n(p, N, v.lane.begin());
        return v;
    }

    void store(std::int16_t* p) const { std::copy_n(lane.begin(), N, p); }

    friend I16xN adds(I16xN a, I16xN b) {
        I16xN r;
        for (int i = 0; i < N; ++i) {
            const int s = int(a.lane[i]) + int(b.lane[i]);
            r.lane[i] = static_cast<std::int16_t>(std::clamp(s, -32768, 32767));
        }
        return r;
    }

    friend I16xN subs(I16xN a, I16xN b) {
        I16xN r;
        for (int i = 0; i < N; ++i) {
            const int s = int(a.lane[i]) - int(b.lane[i]);
            r.lane[i] = static_cast<std::int16_t>(std::clamp(s, -32768, 32767));
        }
        return r;
    }

    friend I16xN vmax(I16xN a, I16xN b) {
        I16xN r;
        for (int i = 0; i < N; ++i) r.lane[i] = std::max(a.lane[i], b.lane[i]);
        return r;
    }

    I16xN shl_lane() const {
        I16xN r;
        r.lane[0] = 0;
        for (int i = 1; i < N; ++i) r.lane[i] = lane[i - 1];
        return r;
    }

    friend bool any_gt(I16xN a, I16xN b) {
        for (int i = 0; i < N; ++i)
            if (a.lane[i] > b.lane[i]) return true;
        return false;
    }

    std::int16_t hmax() const {
        return *std::max_element(lane.begin(), lane.end());
    }
};

template <int N>
inline U8xN<N> lookup32(const std::uint8_t* table, U8xN<N> idx) {
    U8xN<N> r;
    for (int i = 0; i < N; ++i) r.lane[i] = table[idx.lane[i] & 31];
    return r;
}

template <int N>
inline I16xN<N / 2> widen_lo(U8xN<N> a) {
    I16xN<N / 2> r;
    for (int i = 0; i < N / 2; ++i) r.lane[i] = a.lane[i];
    return r;
}

template <int N>
inline I16xN<N / 2> widen_hi(U8xN<N> a) {
    I16xN<N / 2> r;
    for (int i = 0; i < N / 2; ++i) r.lane[i] = a.lane[N / 2 + i];
    return r;
}

// Default widths match SSE2 so the scalar backend produces identical
// striped layouts (and thus bit-identical intermediate states).
using U8x16s = U8xN<16>;
using I16x8s = I16xN<8>;

}  // namespace swh::simd

#pragma once

#if defined(__SSE2__)

#include <emmintrin.h>
#if defined(__SSSE3__)
#include <tmmintrin.h>
#endif

#include <cstdint>

namespace swh::simd {

/// 16 unsigned 8-bit lanes (SSE2). See vec_scalar.hpp for the interface
/// contract shared by all backends.
struct U8x16 {
    using lane_type = std::uint8_t;
    static constexpr int kLanes = 16;

    __m128i v;

    static U8x16 zero() { return {_mm_setzero_si128()}; }

    static U8x16 splat(std::uint8_t x) {
        return {_mm_set1_epi8(static_cast<char>(x))};
    }

    static U8x16 load(const std::uint8_t* p) {
        return {_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))};
    }

    void store(std::uint8_t* p) const {
        _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
    }

    friend U8x16 adds(U8x16 a, U8x16 b) { return {_mm_adds_epu8(a.v, b.v)}; }
    friend U8x16 subs(U8x16 a, U8x16 b) { return {_mm_subs_epu8(a.v, b.v)}; }
    friend U8x16 vmax(U8x16 a, U8x16 b) { return {_mm_max_epu8(a.v, b.v)}; }

    U8x16 shl_lane() const { return {_mm_slli_si128(v, 1)}; }

    friend bool any_gt(U8x16 a, U8x16 b) {
        // Unsigned "a > b" == saturating a-b is nonzero in some lane.
        const __m128i diff = _mm_subs_epu8(a.v, b.v);
        const __m128i eq0 = _mm_cmpeq_epi8(diff, _mm_setzero_si128());
        return _mm_movemask_epi8(eq0) != 0xFFFF;
    }

    friend std::uint64_t ge_mask(U8x16 a, U8x16 b) {
        // Unsigned "a >= b" == max(a, b) == a, lane-wise.
        const __m128i eq = _mm_cmpeq_epi8(_mm_max_epu8(a.v, b.v), a.v);
        return static_cast<std::uint64_t>(
            static_cast<unsigned>(_mm_movemask_epi8(eq)));
    }

    std::uint8_t hmax() const {
        __m128i m = _mm_max_epu8(v, _mm_srli_si128(v, 8));
        m = _mm_max_epu8(m, _mm_srli_si128(m, 4));
        m = _mm_max_epu8(m, _mm_srli_si128(m, 2));
        m = _mm_max_epu8(m, _mm_srli_si128(m, 1));
        return static_cast<std::uint8_t>(_mm_cvtsi128_si32(m) & 0xFF);
    }

    /// Per-lane gather from a 32-entry byte table (indices < 32). With
    /// SSSE3 this is two PSHUFBs selected on index bit 4; the plain-SSE2
    /// fallback gathers through memory (correct, slower — only hit on
    /// builds without SSSE3).
    friend U8x16 lookup32(const std::uint8_t* table, U8x16 idx) {
#if defined(__SSSE3__)
        const __m128i lo =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(table));
        const __m128i hi =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(table + 16));
        // Indices are < 32, so the signed compare against 15 is exact;
        // PSHUFB uses only the low 4 index bits for the in-table slot.
        const __m128i sel = _mm_cmpgt_epi8(idx.v, _mm_set1_epi8(15));
        const __m128i rl = _mm_shuffle_epi8(lo, idx.v);
        const __m128i rh = _mm_shuffle_epi8(hi, idx.v);
        return {_mm_or_si128(_mm_andnot_si128(sel, rl),
                             _mm_and_si128(sel, rh))};
#else
        alignas(16) std::uint8_t ix[16];
        alignas(16) std::uint8_t out[16];
        _mm_store_si128(reinterpret_cast<__m128i*>(ix), idx.v);
        for (int i = 0; i < 16; ++i) out[i] = table[ix[i] & 31];
        return {_mm_load_si128(reinterpret_cast<const __m128i*>(out))};
#endif
    }
};

/// 8 signed 16-bit lanes (SSE2).
struct I16x8 {
    using lane_type = std::int16_t;
    static constexpr int kLanes = 8;

    __m128i v;

    static I16x8 zero() { return {_mm_setzero_si128()}; }

    static I16x8 splat(std::int16_t x) { return {_mm_set1_epi16(x)}; }

    static I16x8 load(const std::int16_t* p) {
        return {_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))};
    }

    void store(std::int16_t* p) const {
        _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
    }

    friend I16x8 adds(I16x8 a, I16x8 b) { return {_mm_adds_epi16(a.v, b.v)}; }
    friend I16x8 subs(I16x8 a, I16x8 b) { return {_mm_subs_epi16(a.v, b.v)}; }
    friend I16x8 vmax(I16x8 a, I16x8 b) { return {_mm_max_epi16(a.v, b.v)}; }

    I16x8 shl_lane() const { return {_mm_slli_si128(v, 2)}; }

    friend bool any_gt(I16x8 a, I16x8 b) {
        return _mm_movemask_epi8(_mm_cmpgt_epi16(a.v, b.v)) != 0;
    }

    std::int16_t hmax() const {
        __m128i m = _mm_max_epi16(v, _mm_srli_si128(v, 8));
        m = _mm_max_epi16(m, _mm_srli_si128(m, 4));
        m = _mm_max_epi16(m, _mm_srli_si128(m, 2));
        return static_cast<std::int16_t>(_mm_cvtsi128_si32(m) & 0xFFFF);
    }
};

/// Zero-extends lanes 0..7 of a u8 vector to i16, preserving lane order
/// (unpack against zero is an in-order widening).
inline I16x8 widen_lo(U8x16 a) {
    return {_mm_unpacklo_epi8(a.v, _mm_setzero_si128())};
}

/// Zero-extends lanes 8..15.
inline I16x8 widen_hi(U8x16 a) {
    return {_mm_unpackhi_epi8(a.v, _mm_setzero_si128())};
}

}  // namespace swh::simd

#endif  // __SSE2__

#pragma once

#include <string>
#include <variant>
#include <vector>

#include "core/results.hpp"
#include "core/types.hpp"

namespace swh::net {

// ---- Slave -> master ----------------------------------------------------

struct MsgRegister {
    core::PeId pe;
    core::PeKind kind;
};

struct MsgWorkRequest {
    core::PeId pe;
};

/// Periodic progress notification (paper SS IV-A.2): the observed
/// processing speed since the previous notification.
struct MsgProgress {
    core::PeId pe;
    double cells_per_second;
};

struct MsgTaskDone {
    core::PeId pe;
    core::TaskId task;
    core::TaskResult result;
};

/// Node-leave announcement (future-work extension).
struct MsgDeregister {
    core::PeId pe;
};

/// Idle liveness beacon: sent while a slave is parked waiting for work,
/// so the master can tell a starved-but-alive PE from a dead one. Busy
/// slaves piggyback liveness on MsgProgress instead; any message from a
/// PE refreshes its liveness deadline.
struct MsgHeartbeat {
    core::PeId pe;
};

/// Engine-failure report: executing `task` raised `what` instead of
/// completing. The slave stays up and moves on; the master requeues the
/// task under a bounded per-task retry budget with backoff.
struct MsgTaskFailed {
    core::PeId pe;
    core::TaskId task;
    std::string what;
};

using MasterMsg = std::variant<MsgRegister, MsgWorkRequest, MsgProgress,
                               MsgTaskDone, MsgDeregister, MsgHeartbeat,
                               MsgTaskFailed>;

// ---- Master -> slave ----------------------------------------------------

struct MsgAssign {
    std::vector<core::Task> tasks;  ///< execution order, with metadata
};

/// Nothing to hand out right now; the master will push an Assign (or a
/// Shutdown) when the situation changes. The slave must block, not poll.
struct MsgNoWorkYet {};

/// Abandon a replica another PE already finished (cancel_losers mode).
struct MsgCancel {
    core::TaskId task;
};

/// All tasks finished; the slave should exit.
struct MsgShutdown {};

using SlaveMsg = std::variant<MsgAssign, MsgNoWorkYet, MsgCancel, MsgShutdown>;

}  // namespace swh::net

#pragma once

#include <variant>
#include <vector>

#include "core/results.hpp"
#include "core/types.hpp"

namespace swh::net {

// ---- Slave -> master ----------------------------------------------------

struct MsgRegister {
    core::PeId pe;
    core::PeKind kind;
};

struct MsgWorkRequest {
    core::PeId pe;
};

/// Periodic progress notification (paper SS IV-A.2): the observed
/// processing speed since the previous notification.
struct MsgProgress {
    core::PeId pe;
    double cells_per_second;
};

struct MsgTaskDone {
    core::PeId pe;
    core::TaskId task;
    core::TaskResult result;
};

/// Node-leave announcement (future-work extension).
struct MsgDeregister {
    core::PeId pe;
};

using MasterMsg = std::variant<MsgRegister, MsgWorkRequest, MsgProgress,
                               MsgTaskDone, MsgDeregister>;

// ---- Master -> slave ----------------------------------------------------

struct MsgAssign {
    std::vector<core::Task> tasks;  ///< execution order, with metadata
};

/// Nothing to hand out right now; the master will push an Assign (or a
/// Shutdown) when the situation changes. The slave must block, not poll.
struct MsgNoWorkYet {};

/// Abandon a replica another PE already finished (cancel_losers mode).
struct MsgCancel {
    core::TaskId task;
};

/// All tasks finished; the slave should exit.
struct MsgShutdown {};

using SlaveMsg = std::variant<MsgAssign, MsgNoWorkYet, MsgCancel, MsgShutdown>;

}  // namespace swh::net

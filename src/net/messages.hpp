#pragma once

#include <string>
#include <variant>
#include <vector>

#include "core/results.hpp"
#include "core/types.hpp"

namespace swh::net {

// ---- Slave -> master ----------------------------------------------------

struct MsgRegister {
    core::PeId pe;
    core::PeKind kind;

    friend bool operator==(const MsgRegister&, const MsgRegister&) = default;
};

struct MsgWorkRequest {
    core::PeId pe;

    friend bool operator==(const MsgWorkRequest&, const MsgWorkRequest&) = default;
};

/// Periodic progress notification (paper SS IV-A.2): the observed
/// processing speed since the previous notification.
struct MsgProgress {
    core::PeId pe;
    double cells_per_second;

    friend bool operator==(const MsgProgress&, const MsgProgress&) = default;
};

struct MsgTaskDone {
    core::PeId pe;
    core::TaskId task;
    core::TaskResult result;

    friend bool operator==(const MsgTaskDone&, const MsgTaskDone&) = default;
};

/// Node-leave announcement (future-work extension).
struct MsgDeregister {
    core::PeId pe;

    friend bool operator==(const MsgDeregister&, const MsgDeregister&) = default;
};

/// Idle liveness beacon: sent while a slave is parked waiting for work,
/// so the master can tell a starved-but-alive PE from a dead one. Busy
/// slaves piggyback liveness on MsgProgress instead; any message from a
/// PE refreshes its liveness deadline.
struct MsgHeartbeat {
    core::PeId pe;

    friend bool operator==(const MsgHeartbeat&, const MsgHeartbeat&) = default;
};

/// Engine-failure report: executing `task` raised `what` instead of
/// completing. The slave stays up and moves on; the master requeues the
/// task under a bounded per-task retry budget with backoff.
struct MsgTaskFailed {
    core::PeId pe;
    core::TaskId task;
    std::string what;

    friend bool operator==(const MsgTaskFailed&, const MsgTaskFailed&) = default;
};

using MasterMsg = std::variant<MsgRegister, MsgWorkRequest, MsgProgress,
                               MsgTaskDone, MsgDeregister, MsgHeartbeat,
                               MsgTaskFailed>;

// ---- Master -> slave ----------------------------------------------------

struct MsgAssign {
    std::vector<core::Task> tasks;  ///< execution order, with metadata

    friend bool operator==(const MsgAssign&, const MsgAssign&) = default;
};

/// Nothing to hand out right now; the master will push an Assign (or a
/// Shutdown) when the situation changes. The slave must block, not poll.
struct MsgNoWorkYet {
    friend bool operator==(const MsgNoWorkYet&, const MsgNoWorkYet&) = default;
};

/// Abandon a replica another PE already finished (cancel_losers mode).
struct MsgCancel {
    core::TaskId task;

    friend bool operator==(const MsgCancel&, const MsgCancel&) = default;
};

/// All tasks finished; the slave should exit.
struct MsgShutdown {
    friend bool operator==(const MsgShutdown&, const MsgShutdown&) = default;
};

using SlaveMsg = std::variant<MsgAssign, MsgNoWorkYet, MsgCancel, MsgShutdown>;

}  // namespace swh::net

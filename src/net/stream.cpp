#include "net/stream.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <thread>
#include <unistd.h>

#include "net/wire.hpp"
#include "util/check.hpp"
#include "util/error.hpp"

namespace swh::net {

namespace {

std::string errno_string(const char* what) {
    return std::string(what) + ": " + std::strerror(errno);
}

/// Full write with EINTR retry; MSG_NOSIGNAL so a vanished peer surfaces
/// as EPIPE instead of killing the process with SIGPIPE.
bool write_all(int fd, const std::uint8_t* data, std::size_t size) {
    while (size > 0) {
        const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        data += n;
        size -= static_cast<std::size_t>(n);
    }
    return true;
}

/// Full read with EINTR retry. Returns false on EOF or error.
bool read_all(int fd, std::uint8_t* data, std::size_t size) {
    while (size > 0) {
        const ssize_t n = ::recv(fd, data, size, 0);
        if (n <= 0) {
            if (n < 0 && errno == EINTR) continue;
            return false;
        }
        data += n;
        size -= static_cast<std::size_t>(n);
    }
    return true;
}

}  // namespace

void Socket::shutdown_both() {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

Socket tcp_listen(std::uint16_t& port, int backlog) {
    Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
    if (!sock.valid()) throw swh::IoError(errno_string("socket"));
    const int one = 1;
    ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
        throw swh::IoError(errno_string("bind"));
    }
    if (::listen(sock.fd(), backlog) != 0) {
        throw swh::IoError(errno_string("listen"));
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&addr), &len) !=
        0) {
        throw swh::IoError(errno_string("getsockname"));
    }
    port = ntohs(addr.sin_port);
    return sock;
}

std::optional<Socket> tcp_accept(Socket& listener, double timeout_s) {
    pollfd pfd{};
    pfd.fd = listener.fd();
    pfd.events = POLLIN;
    const int timeout_ms =
        timeout_s < 0.0 ? -1 : static_cast<int>(timeout_s * 1000.0);
    while (true) {
        const int rc = ::poll(&pfd, 1, timeout_ms);
        if (rc < 0 && errno == EINTR) continue;
        if (rc <= 0) return std::nullopt;  // timeout or poll error
        const int fd = ::accept(listener.fd(), nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR) continue;
            return std::nullopt;
        }
        return Socket(fd);
    }
}

std::optional<Socket> tcp_connect(const std::string& host, std::uint16_t port,
                                  double timeout_s) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        return std::nullopt;  // numeric IPv4 only (loopback deployment)
    }
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(timeout_s));
    while (true) {
        Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
        if (sock.valid() &&
            ::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)) == 0) {
            const int one = 1;
            ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof(one));
            return sock;
        }
        // The master may not be listening yet (process bringup order is
        // not guaranteed): back off briefly and retry until the deadline.
        if (std::chrono::steady_clock::now() >= deadline) return std::nullopt;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
}

std::pair<Socket, Socket> socket_pair() {
    int fds[2] = {-1, -1};
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
        throw swh::IoError(errno_string("socketpair"));
    }
    return {Socket(fds[0]), Socket(fds[1])};
}

StreamTransport::StreamTransport(Socket sock) : sock_(std::move(sock)) {
    SWH_CHECK(sock_.valid(), "transport requires a connected socket");
}

StreamTransport::~StreamTransport() { shutdown(); }

bool StreamTransport::send_frame(const std::vector<std::uint8_t>& frame) {
    const swh::LockGuard lock(mu_);
    if (broken_) return false;
    if (!write_all(sock_.fd(), frame.data(), frame.size())) {
        broken_ = true;
        if (error_.empty()) error_ = errno_string("send");
        sock_.shutdown_both();
        return false;
    }
    return true;
}

std::optional<std::vector<std::uint8_t>> StreamTransport::recv_frame() {
    std::uint8_t prefix[4];
    if (!read_all(sock_.fd(), prefix, sizeof(prefix))) {
        fail("connection closed");
        return std::nullopt;
    }
    const std::uint32_t body_len =
        static_cast<std::uint32_t>(prefix[0]) |
        static_cast<std::uint32_t>(prefix[1]) << 8 |
        static_cast<std::uint32_t>(prefix[2]) << 16 |
        static_cast<std::uint32_t>(prefix[3]) << 24;
    // Reject before buffering: a forged length prefix must not make this
    // side allocate (version + tag = 2 bytes is the smallest body).
    if (body_len < 2 || body_len > wire::kMaxFrameBytes) {
        fail("frame length out of range");
        return std::nullopt;
    }
    std::vector<std::uint8_t> body(body_len);
    if (!read_all(sock_.fd(), body.data(), body.size())) {
        fail("connection closed mid-frame");
        return std::nullopt;
    }
    return body;
}

void StreamTransport::shutdown() {
    fail("transport shut down");
}

bool StreamTransport::ok() const {
    const swh::LockGuard lock(mu_);
    return !broken_;
}

std::string StreamTransport::last_error() const {
    const swh::LockGuard lock(mu_);
    return error_;
}

void StreamTransport::fail(const std::string& why) {
    {
        const swh::LockGuard lock(mu_);
        if (!broken_) {
            broken_ = true;
            error_ = why;
        }
    }
    sock_.shutdown_both();
}

}  // namespace swh::net

#pragma once

#include <algorithm>
#include <chrono>
#include <deque>
#include <iterator>
#include <optional>
#include <utility>

#include "util/annotations.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace swh::net {

/// Observation hook for a Channel's traffic (see obs::ChannelTracer).
/// Callbacks run WITH THE CHANNEL MUTEX HELD — the serialisation is
/// what makes a per-channel trace lane safe — so they must be quick and
/// must never call back into the channel.
class ChannelObserver {
public:
    virtual ~ChannelObserver() = default;
    virtual void on_send(std::size_t depth_after) { (void)depth_after; }
    virtual void on_recv(std::size_t depth_after) { (void)depth_after; }
};

/// Fault-injection plan for a Channel (ISSUE 5): a lossy and/or
/// congested link. Drops are drawn per send from a seeded deterministic
/// stream; stall adds a fixed extra delivery delay on top of the
/// channel's base latency. Recovery from drops is the liveness layer's
/// job (heartbeats, re-registration, workload adjustment) — the channel
/// just loses the message, as a real network would.
struct ChannelFaults {
    double drop_prob = 0.0;  ///< P(silently discard a send), in [0, 1]
    double stall_s = 0.0;    ///< extra delivery delay per message
    std::uint64_t seed = 0x5EEDF00DULL;  ///< drop-draw stream seed
};

/// Blocking MPSC message queue — the "network" between master and slaves
/// in the threaded runtime. An optional fixed delivery delay emulates
/// link latency (a message becomes visible to recv only delay seconds
/// after send), which the paper's Gigabit-Ethernet setup would add.
template <typename T>
class Channel {
public:
    explicit Channel(double delivery_delay_s = 0.0)
        : delay_(std::chrono::duration_cast<Clock::duration>(
              std::chrono::duration<double>(delivery_delay_s))) {
        SWH_CHECK_GE(delivery_delay_s, 0.0, "delay must be non-negative");
    }

    Channel(const Channel&) = delete;
    Channel& operator=(const Channel&) = delete;

    /// Attaches a traffic observer (nullptr detaches). Non-owning; the
    /// observer must outlive the channel's traffic.
    void set_observer(ChannelObserver* observer) SWH_EXCLUDES(mu_) {
        const swh::LockGuard lock(mu_);
        observer_ = observer;
    }

    /// Arms (or, with a default-constructed plan, disarms) link-fault
    /// injection. Reseeds the drop stream, so runs are reproducible.
    void inject_faults(const ChannelFaults& faults) SWH_EXCLUDES(mu_) {
        SWH_CHECK_GE(faults.drop_prob, 0.0, "drop probability below 0");
        SWH_CHECK_LE(faults.drop_prob, 1.0, "drop probability above 1");
        SWH_CHECK_GE(faults.stall_s, 0.0, "stall must be non-negative");
        const swh::LockGuard lock(mu_);
        faults_ = faults;
        fault_rng_.reseed(faults.seed);
    }

    /// Messages the link ate: drop-fault discards plus post-close sends.
    std::size_t dropped() const SWH_EXCLUDES(mu_) {
        const swh::LockGuard lock(mu_);
        return dropped_;
    }

    void send(T msg) SWH_EXCLUDES(mu_) {
        {
            const swh::LockGuard lock(mu_);
            if (closed_) {
                // ISSUE 10 shutdown-race fix: a slave's late heartbeat or
                // deregister racing the master's close() used to trip
                // SWH_CHECK and abort the process. A real link would
                // simply lose the message — so the send becomes a
                // counted drop, visible through dropped(). Misuse before
                // the link even exists stays a hard check at the remote
                // layer (RemoteChannel refuses construction without a
                // handshaken transport).
                ++dropped_;
                return;
            }
            if (faults_.drop_prob > 0.0 &&
                fault_rng_.uniform() < faults_.drop_prob) {
                ++dropped_;
                return;  // the link ate it; no observer event, no wakeup
            }
            const auto stall = std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(faults_.stall_s));
            queue_.push_back(
                Entry{Clock::now() + delay_ + stall, std::move(msg)});
            if (observer_ != nullptr) observer_->on_send(queue_.size());
        }
        // Single consumer per channel (MPSC): waking one waiter is
        // enough and avoids a thundering notify_all per message.
        cv_.notify_one();
    }

    /// Blocks until a message is deliverable or the channel is closed and
    /// drained (then nullopt).
    std::optional<T> recv() SWH_EXCLUDES(mu_) {
        const swh::LockGuard lock(mu_);
        while (true) {
            if (!queue_.empty()) {
                const auto it = earliest_locked();
                if (it->ready <= Clock::now()) return pop_locked(it);
                cv_.wait_until(mu_, it->ready);
                continue;
            }
            if (closed_) return std::nullopt;
            cv_.wait(mu_);
        }
    }

    /// Blocks up to `timeout_s` seconds: a deliverable message, or
    /// nullopt on timeout or when closed and drained (callers that need
    /// to tell the two apart check closed()). The deadline-driven wait
    /// the fault-tolerant master loop runs on.
    std::optional<T> recv_for(double timeout_s) SWH_EXCLUDES(mu_) {
        const swh::LockGuard lock(mu_);
        const auto deadline =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(
                                   std::max(0.0, timeout_s)));
        while (true) {
            const auto now = Clock::now();
            if (!queue_.empty()) {
                const auto it = earliest_locked();
                if (it->ready <= now) return pop_locked(it);
                if (now >= deadline) return std::nullopt;
                cv_.wait_until(mu_, std::min(deadline, it->ready));
                continue;
            }
            if (closed_) return std::nullopt;
            if (now >= deadline) return std::nullopt;
            cv_.wait_until(mu_, deadline);
        }
    }

    /// Non-blocking: a deliverable message or nullopt.
    std::optional<T> try_recv() SWH_EXCLUDES(mu_) {
        const swh::LockGuard lock(mu_);
        if (queue_.empty()) return std::nullopt;
        const auto it = earliest_locked();
        if (it->ready > Clock::now()) return std::nullopt;
        return pop_locked(it);
    }

    /// After close, sends become counted drops and recv drains then
    /// returns nullopt.
    /// notify_all here on purpose: close is a broadcast-shaped event
    /// (any stray waiter must observe it), unlike per-message sends.
    void close() SWH_EXCLUDES(mu_) {
        {
            const swh::LockGuard lock(mu_);
            closed_ = true;
        }
        cv_.notify_all();
    }

    std::size_t size() const SWH_EXCLUDES(mu_) {
        const swh::LockGuard lock(mu_);
        return queue_.size();
    }

    bool closed() const SWH_EXCLUDES(mu_) {
        const swh::LockGuard lock(mu_);
        return closed_;
    }

private:
    using Clock = std::chrono::steady_clock;
    struct Entry {
        Clock::time_point ready;
        T payload;
    };

    /// The queue slot that becomes deliverable first: earliest ready
    /// time, FIFO position breaking ties. With per-message fault stalls
    /// a later-sent entry can be deliverable before front(), so every
    /// delivery path must key on this instead of the head — waiting on
    /// front().ready alone let recv_for time out (and the master declare
    /// a slave dead) while a deliverable message sat behind a stalled
    /// head (ISSUE 10 head-of-line fix). O(queue) scan; inbox depths are
    /// a handful of messages (see the channel depth gauges).
    typename std::deque<Entry>::iterator earliest_locked()
        SWH_REQUIRES(mu_) {
        auto best = queue_.begin();
        for (auto it = std::next(queue_.begin()); it != queue_.end(); ++it) {
            if (it->ready < best->ready) best = it;
        }
        return best;
    }

    std::optional<T> pop_locked(typename std::deque<Entry>::iterator it)
        SWH_REQUIRES(mu_) {
        T msg = std::move(it->payload);
        queue_.erase(it);
        if (observer_ != nullptr) observer_->on_recv(queue_.size());
        return msg;
    }

    mutable swh::Mutex mu_;
    swh::CondVar cv_;
    std::deque<Entry> queue_ SWH_GUARDED_BY(mu_);
    const Clock::duration delay_;  ///< fixed at construction
    ChannelObserver* observer_ SWH_GUARDED_BY(mu_) = nullptr;
    bool closed_ SWH_GUARDED_BY(mu_) = false;
    ChannelFaults faults_ SWH_GUARDED_BY(mu_);
    Rng fault_rng_ SWH_GUARDED_BY(mu_);
    std::size_t dropped_ SWH_GUARDED_BY(mu_) = 0;
};

}  // namespace swh::net

#pragma once

#include <chrono>
#include <deque>
#include <optional>
#include <utility>

#include "util/annotations.hpp"
#include "util/check.hpp"

namespace swh::net {

/// Observation hook for a Channel's traffic (see obs::ChannelTracer).
/// Callbacks run WITH THE CHANNEL MUTEX HELD — the serialisation is
/// what makes a per-channel trace lane safe — so they must be quick and
/// must never call back into the channel.
class ChannelObserver {
public:
    virtual ~ChannelObserver() = default;
    virtual void on_send(std::size_t depth_after) { (void)depth_after; }
    virtual void on_recv(std::size_t depth_after) { (void)depth_after; }
};

/// Blocking MPSC message queue — the "network" between master and slaves
/// in the threaded runtime. An optional fixed delivery delay emulates
/// link latency (a message becomes visible to recv only delay seconds
/// after send), which the paper's Gigabit-Ethernet setup would add.
template <typename T>
class Channel {
public:
    explicit Channel(double delivery_delay_s = 0.0)
        : delay_(std::chrono::duration_cast<Clock::duration>(
              std::chrono::duration<double>(delivery_delay_s))) {
        SWH_CHECK_GE(delivery_delay_s, 0.0, "delay must be non-negative");
    }

    Channel(const Channel&) = delete;
    Channel& operator=(const Channel&) = delete;

    /// Attaches a traffic observer (nullptr detaches). Non-owning; the
    /// observer must outlive the channel's traffic.
    void set_observer(ChannelObserver* observer) SWH_EXCLUDES(mu_) {
        const swh::LockGuard lock(mu_);
        observer_ = observer;
    }

    void send(T msg) SWH_EXCLUDES(mu_) {
        {
            const swh::LockGuard lock(mu_);
            SWH_CHECK(!closed_, "send on closed channel");
            queue_.push_back(
                Entry{Clock::now() + delay_, std::move(msg)});
            if (observer_ != nullptr) observer_->on_send(queue_.size());
        }
        // Single consumer per channel (MPSC): waking one waiter is
        // enough and avoids a thundering notify_all per message.
        cv_.notify_one();
    }

    /// Blocks until a message is deliverable or the channel is closed and
    /// drained (then nullopt).
    std::optional<T> recv() SWH_EXCLUDES(mu_) {
        const swh::LockGuard lock(mu_);
        while (true) {
            if (!queue_.empty()) {
                const auto ready = queue_.front().ready;
                if (ready <= Clock::now()) break;
                cv_.wait_until(mu_, ready);
                continue;
            }
            if (closed_) return std::nullopt;
            cv_.wait(mu_);
        }
        T msg = std::move(queue_.front().payload);
        queue_.pop_front();
        if (observer_ != nullptr) observer_->on_recv(queue_.size());
        return msg;
    }

    /// Non-blocking: a deliverable message or nullopt.
    std::optional<T> try_recv() SWH_EXCLUDES(mu_) {
        const swh::LockGuard lock(mu_);
        if (queue_.empty() || queue_.front().ready > Clock::now())
            return std::nullopt;
        T msg = std::move(queue_.front().payload);
        queue_.pop_front();
        if (observer_ != nullptr) observer_->on_recv(queue_.size());
        return msg;
    }

    /// After close, sends throw and recv drains then returns nullopt.
    /// notify_all here on purpose: close is a broadcast-shaped event
    /// (any stray waiter must observe it), unlike per-message sends.
    void close() SWH_EXCLUDES(mu_) {
        {
            const swh::LockGuard lock(mu_);
            closed_ = true;
        }
        cv_.notify_all();
    }

    std::size_t size() const SWH_EXCLUDES(mu_) {
        const swh::LockGuard lock(mu_);
        return queue_.size();
    }

private:
    using Clock = std::chrono::steady_clock;
    struct Entry {
        Clock::time_point ready;
        T payload;
    };

    mutable swh::Mutex mu_;
    swh::CondVar cv_;
    std::deque<Entry> queue_ SWH_GUARDED_BY(mu_);
    Clock::duration delay_{};
    ChannelObserver* observer_ SWH_GUARDED_BY(mu_) = nullptr;
    bool closed_ SWH_GUARDED_BY(mu_) = false;
};

}  // namespace swh::net

#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "util/error.hpp"

namespace swh::net {

/// Observation hook for a Channel's traffic (see obs::ChannelTracer).
/// Callbacks run WITH THE CHANNEL MUTEX HELD — the serialisation is
/// what makes a per-channel trace lane safe — so they must be quick and
/// must never call back into the channel.
class ChannelObserver {
public:
    virtual ~ChannelObserver() = default;
    virtual void on_send(std::size_t depth_after) { (void)depth_after; }
    virtual void on_recv(std::size_t depth_after) { (void)depth_after; }
};

/// Blocking MPSC message queue — the "network" between master and slaves
/// in the threaded runtime. An optional fixed delivery delay emulates
/// link latency (a message becomes visible to recv only delay seconds
/// after send), which the paper's Gigabit-Ethernet setup would add.
template <typename T>
class Channel {
public:
    explicit Channel(double delivery_delay_s = 0.0)
        : delay_(std::chrono::duration_cast<Clock::duration>(
              std::chrono::duration<double>(delivery_delay_s))) {
        SWH_REQUIRE(delivery_delay_s >= 0.0, "delay must be non-negative");
    }

    Channel(const Channel&) = delete;
    Channel& operator=(const Channel&) = delete;

    /// Attaches a traffic observer (nullptr detaches). Non-owning; the
    /// observer must outlive the channel's traffic.
    void set_observer(ChannelObserver* observer) {
        const std::lock_guard lock(mu_);
        observer_ = observer;
    }

    void send(T msg) {
        {
            const std::lock_guard lock(mu_);
            SWH_REQUIRE(!closed_, "send on closed channel");
            queue_.push_back(
                Entry{Clock::now() + delay_, std::move(msg)});
            if (observer_ != nullptr) observer_->on_send(queue_.size());
        }
        // Single consumer per channel (MPSC): waking one waiter is
        // enough and avoids a thundering notify_all per message.
        cv_.notify_one();
    }

    /// Blocks until a message is deliverable or the channel is closed and
    /// drained (then nullopt).
    std::optional<T> recv() {
        std::unique_lock lock(mu_);
        while (true) {
            if (!queue_.empty()) {
                const auto ready = queue_.front().ready;
                if (ready <= Clock::now()) break;
                cv_.wait_until(lock, ready);
                continue;
            }
            if (closed_) return std::nullopt;
            cv_.wait(lock);
        }
        T msg = std::move(queue_.front().payload);
        queue_.pop_front();
        if (observer_ != nullptr) observer_->on_recv(queue_.size());
        return msg;
    }

    /// Non-blocking: a deliverable message or nullopt.
    std::optional<T> try_recv() {
        const std::lock_guard lock(mu_);
        if (queue_.empty() || queue_.front().ready > Clock::now())
            return std::nullopt;
        T msg = std::move(queue_.front().payload);
        queue_.pop_front();
        if (observer_ != nullptr) observer_->on_recv(queue_.size());
        return msg;
    }

    /// After close, sends throw and recv drains then returns nullopt.
    /// notify_all here on purpose: close is a broadcast-shaped event
    /// (any stray waiter must observe it), unlike per-message sends.
    void close() {
        {
            const std::lock_guard lock(mu_);
            closed_ = true;
        }
        cv_.notify_all();
    }

    std::size_t size() const {
        const std::lock_guard lock(mu_);
        return queue_.size();
    }

private:
    using Clock = std::chrono::steady_clock;
    struct Entry {
        Clock::time_point ready;
        T payload;
    };

    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<Entry> queue_;
    Clock::duration delay_{};
    ChannelObserver* observer_ = nullptr;
    bool closed_ = false;
};

}  // namespace swh::net

#pragma once

// POSIX stream transport for the wire protocol (ISSUE 10): an RAII
// socket, loopback/TCP bootstrap helpers, and StreamTransport — framed,
// length-prefix-validated reads plus mutex-serialised writes over one
// connected stream socket. Nothing here knows about Msg* payloads; the
// codec lives in net/wire.hpp and the Channel-shaped surface in
// net/remote_channel.hpp.

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/annotations.hpp"

namespace swh::net {

/// RAII owner of one POSIX stream-socket fd. Move-only; closes on
/// destruction.
class Socket {
public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket() { close(); }

    Socket(const Socket&) = delete;
    Socket& operator=(const Socket&) = delete;
    Socket(Socket&& other) noexcept : fd_(other.release()) {}
    Socket& operator=(Socket&& other) noexcept {
        if (this != &other) {
            close();
            fd_ = other.release();
        }
        return *this;
    }

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /// Half-closes both directions without releasing the fd: a blocked
    /// read on another thread returns EOF. Safe to call repeatedly.
    void shutdown_both();

    void close();

    int release() {
        const int fd = fd_;
        fd_ = -1;
        return fd;
    }

private:
    int fd_ = -1;
};

/// Listens on 127.0.0.1:`port` (port 0 picks a free port; `port` is
/// updated to the bound one). Throws swh::IoError on failure.
Socket tcp_listen(std::uint16_t& port, int backlog = 16);

/// Accepts one connection, waiting up to `timeout_s`. Returns nullopt
/// on timeout.
std::optional<Socket> tcp_accept(Socket& listener, double timeout_s);

/// Connects to host:port, retrying until `timeout_s` elapses (covers
/// the slave-starts-before-master-listens race in process bringup).
std::optional<Socket> tcp_connect(const std::string& host, std::uint16_t port,
                                  double timeout_s);

/// Connected AF_UNIX pair — the in-process loopback used by tests.
std::pair<Socket, Socket> socket_pair();

/// Framed transport over one connected socket.
///
///   * send_frame serialises concurrent writers under a mutex, so a
///     heartbeat thread and the main slave loop can share a link; a
///     frame is written whole or the link is marked broken.
///   * recv_frame is single-consumer (one reader thread per link): it
///     reads the u32 length prefix, rejects body_len outside
///     [2, wire::kMaxFrameBytes] WITHOUT buffering the body, then reads
///     exactly body_len bytes.
///
/// Any I/O error, EOF, or protocol violation poisons the transport:
/// ok() turns false, subsequent sends become silent failures (the
/// caller's drop accounting sees them), and recv_frame returns nullopt.
class StreamTransport {
public:
    explicit StreamTransport(Socket sock);
    ~StreamTransport();

    StreamTransport(const StreamTransport&) = delete;
    StreamTransport& operator=(const StreamTransport&) = delete;

    /// Writes one already-encoded frame (length prefix included).
    /// Returns false if the link is (or just became) broken.
    bool send_frame(const std::vector<std::uint8_t>& frame)
        SWH_EXCLUDES(mu_);

    /// Blocking read of one frame BODY (the length prefix is consumed
    /// and validated here). nullopt on EOF, error, or an out-of-range
    /// length prefix; last_error() says which.
    std::optional<std::vector<std::uint8_t>> recv_frame() SWH_EXCLUDES(mu_);

    /// Unblocks recv_frame on the reader thread and fails future sends.
    /// Idempotent; also invoked by the destructor.
    void shutdown() SWH_EXCLUDES(mu_);

    /// Poisons the link with an explicit reason (first reason wins) —
    /// how the frame receiver reports a protocol violation so one
    /// malformed frame kills the connection, not the process.
    void fail(const std::string& why) SWH_EXCLUDES(mu_);

    bool ok() const SWH_EXCLUDES(mu_);

    /// One-line reason the link broke ("" while ok()).
    std::string last_error() const SWH_EXCLUDES(mu_);

private:
    /// fd lifetime: set at construction, closed only by the destructor
    /// (after shutdown() has unblocked the reader); shutdown(2) on a
    /// live fd is thread-safe, so no lock is needed around I/O.
    SWH_NOT_GUARDED Socket sock_;
    mutable swh::Mutex mu_;
    bool broken_ SWH_GUARDED_BY(mu_) = false;
    std::string error_ SWH_GUARDED_BY(mu_);
};

}  // namespace swh::net

#pragma once

// Channel-shaped surface over a StreamTransport (ISSUE 10): a reader
// thread decodes frames and feeds the existing delayed-delivery
// net::Channel queue, so everything layered on Channel — observer depth
// gauges, seeded ChannelFaults injection, delivery latency — keeps
// working unchanged when master and slaves are separate OS processes.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/channel.hpp"
#include "net/stream.hpp"
#include "net/wire.hpp"
#include "util/check.hpp"

namespace swh::net {

/// Codec halves bound to a frame direction. "MasterBound" frames travel
/// slave -> master (MasterMsg), "SlaveBound" frames master -> slave.
struct MasterBound {
    using Msg = MasterMsg;
    static void encode_msg(const Msg& m, std::vector<std::uint8_t>& out) {
        wire::encode(m, out);
    }
    static std::optional<Msg> decode_msg(const std::uint8_t* body,
                                         std::size_t size,
                                         std::string* error) {
        return wire::decode_master(body, size, error);
    }
};

struct SlaveBound {
    using Msg = SlaveMsg;
    static void encode_msg(const Msg& m, std::vector<std::uint8_t>& out) {
        wire::encode(m, out);
    }
    static std::optional<Msg> decode_msg(const std::uint8_t* body,
                                         std::size_t size,
                                         std::string* error) {
        return wire::decode_slave(body, size, error);
    }
};

/// Reader-thread pump: frames off `transport`, decoded per `Bound`, into
/// an existing Channel sink. One malformed frame poisons the transport
/// (reason in last_error()) and stops the pump — the connection dies,
/// the process does not, and the liveness machinery takes it from there.
///
/// The master side runs one pump per slave link into the SHARED master
/// inbox with `close_sink_on_exit = false` (one slave's EOF must not
/// close the others' channel); the slave side lets its RemoteChannel
/// close its private inbox so recv() drains then returns nullopt,
/// exactly like the in-process close/drain contract.
template <typename Bound>
class FrameReceiver {
public:
    using Msg = typename Bound::Msg;
    /// Pre-queue admission check (e.g. the master validating a decoded
    /// PeId before it can reach SWH_CHECK in the scheduler). Rejected
    /// frames are counted, not fatal.
    using Filter = std::function<bool(const Msg&)>;

    FrameReceiver(std::shared_ptr<StreamTransport> transport,
                  Channel<Msg>& sink, bool close_sink_on_exit,
                  Filter accept = {})
        : transport_(std::move(transport)),
          sink_(sink),
          close_sink_on_exit_(close_sink_on_exit),
          accept_(std::move(accept)) {
        SWH_CHECK(transport_ != nullptr, "receiver requires a transport");
        reader_ = std::thread([this] { run(); });
    }

    ~FrameReceiver() { stop(); }

    FrameReceiver(const FrameReceiver&) = delete;
    FrameReceiver& operator=(const FrameReceiver&) = delete;

    /// Shuts the transport down (unblocking the reader) and joins it.
    /// Idempotent; after stop() the sink holds every frame that made it.
    void stop() {
        transport_->shutdown();
        if (reader_.joinable()) reader_.join();
    }

    /// Frames the admission filter refused.
    std::size_t rejected() const { return rejected_.load(); }

private:
    void run() {
        while (true) {
            auto body = transport_->recv_frame();
            if (!body.has_value()) break;
            std::string why;
            auto msg = Bound::decode_msg(body->data(), body->size(), &why);
            if (!msg.has_value()) {
                transport_->fail("decode: " + why);
                break;
            }
            if (accept_ && !accept_(*msg)) {
                ++rejected_;
                continue;
            }
            sink_.send(std::move(*msg));
        }
        if (close_sink_on_exit_) sink_.close();
    }

    std::shared_ptr<StreamTransport> transport_;
    Channel<Msg>& sink_;
    const bool close_sink_on_exit_;
    const Filter accept_;
    std::atomic<std::size_t> rejected_{0};
    std::thread reader_;
};

/// The slave-side endpoint: Channel's send/recv/recv_for/try_recv/close
/// surface where recv pulls decoded SlaveMsg frames off the socket and
/// send encodes MasterMsg frames onto it. Inbound messages flow through
/// a real Channel, so set_observer / inject_faults / delivery delay
/// apply to socket traffic exactly as they do in-process.
template <typename RecvBound, typename SendBound>
class RemoteChannel {
public:
    using RecvMsg = typename RecvBound::Msg;
    using SendMsg = typename SendBound::Msg;

    /// Pre-handshake misuse stays a hard check (the shutdown-race fix in
    /// Channel::send deliberately does not excuse it): constructing a
    /// RemoteChannel on a missing or already-broken transport aborts.
    explicit RemoteChannel(std::shared_ptr<StreamTransport> transport,
                           double delivery_delay_s = 0.0)
        : transport_(require_handshaken(std::move(transport))),
          inbox_(delivery_delay_s),
          receiver_(transport_, inbox_, /*close_sink_on_exit=*/true) {}

    /// Encodes and writes one frame. A send after the link broke (or
    /// after close()) is a counted drop — same contract as a closed
    /// in-process Channel.
    void send(const SendMsg& msg) {
        std::vector<std::uint8_t> frame;
        SendBound::encode_msg(msg, frame);
        if (!transport_->send_frame(frame)) ++send_drops_;
    }

    std::optional<RecvMsg> recv() { return inbox_.recv(); }
    std::optional<RecvMsg> recv_for(double timeout_s) {
        return inbox_.recv_for(timeout_s);
    }
    std::optional<RecvMsg> try_recv() { return inbox_.try_recv(); }

    /// Half-closes the link and closes the inbox: pending deliverable
    /// messages drain, then recv returns nullopt.
    void close() {
        receiver_.stop();
        inbox_.close();
    }

    bool closed() const { return inbox_.closed(); }
    std::size_t size() const { return inbox_.size(); }

    /// Inbound drops (channel faults) plus outbound frames the broken
    /// link ate.
    std::size_t dropped() const {
        return inbox_.dropped() + send_drops_.load();
    }

    void set_observer(ChannelObserver* observer) {
        inbox_.set_observer(observer);
    }
    void inject_faults(const ChannelFaults& faults) {
        inbox_.inject_faults(faults);
    }

    /// The in-process queue behind recv — for tests that assert gauge
    /// and fault behaviour is identical to the threaded runtime.
    Channel<RecvMsg>& inbox() { return inbox_; }
    StreamTransport& transport() { return *transport_; }

private:
    static std::shared_ptr<StreamTransport> require_handshaken(
        std::shared_ptr<StreamTransport> transport) {
        SWH_CHECK(transport != nullptr && transport->ok(),
                  "RemoteChannel requires a handshaken transport");
        return transport;
    }

    std::shared_ptr<StreamTransport> transport_;
    Channel<RecvMsg> inbox_;
    FrameReceiver<RecvBound> receiver_;
    std::atomic<std::size_t> send_drops_{0};
};

/// What a slave process holds: receives SlaveMsg, sends MasterMsg.
using SlaveRemoteChannel = RemoteChannel<SlaveBound, MasterBound>;

}  // namespace swh::net

#include "net/wire.hpp"

#include <bit>
#include <cmath>
#include <cstring>
#include <utility>

namespace swh::net::wire {

namespace {

template <class... Ts>
struct Overload : Ts... {
    using Ts::operator()...;
};
template <class... Ts>
Overload(Ts...) -> Overload<Ts...>;

// ---- Writer -------------------------------------------------------------

/// Appends LE fields to a byte vector. encode() reserves the frame's
/// length slot up front and patches it once the body is known.
class Writer {
public:
    explicit Writer(std::vector<std::uint8_t>& out) : out_(out) {}

    void u8(std::uint8_t v) { out_.push_back(v); }

    void u32(std::uint32_t v) {
        out_.push_back(static_cast<std::uint8_t>(v));
        out_.push_back(static_cast<std::uint8_t>(v >> 8));
        out_.push_back(static_cast<std::uint8_t>(v >> 16));
        out_.push_back(static_cast<std::uint8_t>(v >> 24));
    }

    void u64(std::uint64_t v) {
        u32(static_cast<std::uint32_t>(v));
        u32(static_cast<std::uint32_t>(v >> 32));
    }

    void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

    /// Encode-side mirror of the decode bound: a string is never put on
    /// the wire longer than kMaxStringBytes, marker included, so both
    /// directions agree on the worst case.
    void str(const std::string& s) {
        if (s.size() <= kMaxStringBytes) {
            u32(static_cast<std::uint32_t>(s.size()));
            out_.insert(out_.end(), s.begin(), s.end());
            return;
        }
        const std::string marker = kTruncationMarker;
        const std::size_t keep = kMaxStringBytes - marker.size();
        u32(static_cast<std::uint32_t>(kMaxStringBytes));
        out_.insert(out_.end(), s.begin(),
                    s.begin() + static_cast<std::ptrdiff_t>(keep));
        out_.insert(out_.end(), marker.begin(), marker.end());
    }

private:
    std::vector<std::uint8_t>& out_;
};

/// Opens a frame (length placeholder + version + tag); patch_len() must
/// be called exactly once after the payload is written.
std::size_t begin_frame(std::vector<std::uint8_t>& out, Tag tag) {
    const std::size_t len_at = out.size();
    Writer w(out);
    w.u32(0);  // patched below
    w.u8(kWireVersion);
    w.u8(static_cast<std::uint8_t>(tag));
    return len_at;
}

void patch_len(std::vector<std::uint8_t>& out, std::size_t len_at) {
    const std::size_t body = out.size() - len_at - 4;
    out[len_at] = static_cast<std::uint8_t>(body);
    out[len_at + 1] = static_cast<std::uint8_t>(body >> 8);
    out[len_at + 2] = static_cast<std::uint8_t>(body >> 16);
    out[len_at + 3] = static_cast<std::uint8_t>(body >> 24);
}

// ---- Reader -------------------------------------------------------------

/// Strict bounds-checked cursor over one frame body. Every getter
/// returns false (and latches a reason) instead of reading past the
/// end; finish() additionally rejects trailing bytes, so a frame must
/// be consumed exactly.
class Reader {
public:
    Reader(const std::uint8_t* p, std::size_t n) : p_(p), end_(p + n) {}

    bool u8(std::uint8_t& v) {
        if (remaining() < 1) return fail("truncated payload");
        v = *p_++;
        return true;
    }

    bool u32(std::uint32_t& v) {
        if (remaining() < 4) return fail("truncated payload");
        v = static_cast<std::uint32_t>(p_[0]) |
            static_cast<std::uint32_t>(p_[1]) << 8 |
            static_cast<std::uint32_t>(p_[2]) << 16 |
            static_cast<std::uint32_t>(p_[3]) << 24;
        p_ += 4;
        return true;
    }

    bool u64(std::uint64_t& v) {
        std::uint32_t lo = 0;
        std::uint32_t hi = 0;
        if (!u32(lo) || !u32(hi)) return false;
        v = static_cast<std::uint64_t>(hi) << 32 | lo;
        return true;
    }

    /// Doubles must be finite on the wire: a forged NaN/Inf rate would
    /// poison the PSS weight estimates downstream.
    bool f64(double& v) {
        std::uint64_t bits = 0;
        if (!u64(bits)) return false;
        v = std::bit_cast<double>(bits);
        if (!std::isfinite(v)) return fail("non-finite double");
        return true;
    }

    /// Bounded string decode (ISSUE 10 satellite): the declared length
    /// is validated against the bytes actually present before anything
    /// is copied, and anything past kMaxStringBytes is skipped — the
    /// stored string keeps a prefix plus the truncation marker instead.
    bool str(std::string& v) {
        std::uint32_t len = 0;
        if (!u32(len)) return false;
        if (len > remaining()) return fail("string length past frame end");
        if (len <= kMaxStringBytes) {
            v.assign(reinterpret_cast<const char*>(p_), len);
        } else {
            const std::string marker = kTruncationMarker;
            const std::size_t keep = kMaxStringBytes - marker.size();
            v.assign(reinterpret_cast<const char*>(p_), keep);
            v += marker;
        }
        p_ += len;
        return true;
    }

    /// Validates an element count against the remaining bytes BEFORE
    /// the caller allocates anything.
    bool count(std::uint32_t& n, std::size_t elem_bytes) {
        if (!u32(n)) return false;
        if (static_cast<std::uint64_t>(n) * elem_bytes > remaining()) {
            return fail("element count past frame end");
        }
        return true;
    }

    bool finish() {
        if (p_ != end_) return fail("trailing bytes after payload");
        return true;
    }

    bool fail(const char* why) {
        if (error_ == nullptr) error_ = why;
        return false;
    }

    const char* error() const { return error_; }

    std::size_t remaining() const {
        return static_cast<std::size_t>(end_ - p_);
    }

private:
    const std::uint8_t* p_;
    const std::uint8_t* end_;
    const char* error_ = nullptr;
};

// ---- Shared payload pieces ---------------------------------------------

constexpr std::size_t kHitBytes = 8;    // u32 db_index + i32 score
constexpr std::size_t kTaskBytes = 16;  // u32 id + u32 query_index + u64

void put_task_result(Writer& w, const core::TaskResult& r) {
    w.u32(r.task);
    w.u32(r.query_index);
    w.u64(r.cells);
    w.u32(static_cast<std::uint32_t>(r.hits.size()));
    for (const core::Hit& h : r.hits) {
        w.u32(h.db_index);
        w.u32(static_cast<std::uint32_t>(h.score));
    }
}

bool get_task_result(Reader& r, core::TaskResult& out) {
    std::uint32_t hit_count = 0;
    if (!r.u32(out.task) || !r.u32(out.query_index) || !r.u64(out.cells) ||
        !r.count(hit_count, kHitBytes)) {
        return false;
    }
    out.hits.resize(hit_count);
    for (core::Hit& h : out.hits) {
        std::uint32_t score_bits = 0;
        if (!r.u32(h.db_index) || !r.u32(score_bits)) return false;
        h.score = static_cast<align::Score>(score_bits);
    }
    return true;
}

bool get_pe_kind(Reader& r, core::PeKind& kind) {
    std::uint8_t raw = 0;
    if (!r.u8(raw)) return false;
    if (raw > static_cast<std::uint8_t>(core::PeKind::Fpga)) {
        return r.fail("PeKind byte out of range");
    }
    kind = static_cast<core::PeKind>(raw);
    return true;
}

/// Common frame-header validation; returns the tag and positions `r`
/// at the payload.
bool open_body(Reader& r, std::uint8_t& tag) {
    std::uint8_t version = 0;
    if (!r.u8(version) || !r.u8(tag)) return false;
    if (version != kWireVersion) return r.fail("unsupported wire version");
    return true;
}

void set_error(std::string* error, const Reader& r, const char* fallback) {
    if (error == nullptr) return;
    *error = r.error() != nullptr ? r.error() : fallback;
}

}  // namespace

// ---- Encoding -----------------------------------------------------------

void encode(const MasterMsg& msg, std::vector<std::uint8_t>& out) {
    std::visit(
        Overload{
            [&](const MsgRegister& m) {
                const std::size_t at = begin_frame(out, Tag::kRegister);
                Writer w(out);
                w.u32(m.pe);
                w.u8(static_cast<std::uint8_t>(m.kind));
                patch_len(out, at);
            },
            [&](const MsgWorkRequest& m) {
                const std::size_t at = begin_frame(out, Tag::kWorkRequest);
                Writer w(out);
                w.u32(m.pe);
                patch_len(out, at);
            },
            [&](const MsgProgress& m) {
                const std::size_t at = begin_frame(out, Tag::kProgress);
                Writer w(out);
                w.u32(m.pe);
                w.f64(m.cells_per_second);
                patch_len(out, at);
            },
            [&](const MsgTaskDone& m) {
                const std::size_t at = begin_frame(out, Tag::kTaskDone);
                Writer w(out);
                w.u32(m.pe);
                w.u32(m.task);
                put_task_result(w, m.result);
                patch_len(out, at);
            },
            [&](const MsgDeregister& m) {
                const std::size_t at = begin_frame(out, Tag::kDeregister);
                Writer w(out);
                w.u32(m.pe);
                patch_len(out, at);
            },
            [&](const MsgHeartbeat& m) {
                const std::size_t at = begin_frame(out, Tag::kHeartbeat);
                Writer w(out);
                w.u32(m.pe);
                patch_len(out, at);
            },
            [&](const MsgTaskFailed& m) {
                const std::size_t at = begin_frame(out, Tag::kTaskFailed);
                Writer w(out);
                w.u32(m.pe);
                w.u32(m.task);
                w.str(m.what);
                patch_len(out, at);
            },
        },
        msg);
}

void encode(const SlaveMsg& msg, std::vector<std::uint8_t>& out) {
    std::visit(
        Overload{
            [&](const MsgAssign& m) {
                const std::size_t at = begin_frame(out, Tag::kAssign);
                Writer w(out);
                w.u32(static_cast<std::uint32_t>(m.tasks.size()));
                for (const core::Task& t : m.tasks) {
                    w.u32(t.id);
                    w.u32(t.query_index);
                    w.u64(t.cells);
                }
                patch_len(out, at);
            },
            [&](const MsgNoWorkYet&) {
                patch_len(out, begin_frame(out, Tag::kNoWorkYet));
            },
            [&](const MsgCancel& m) {
                const std::size_t at = begin_frame(out, Tag::kCancel);
                Writer w(out);
                w.u32(m.task);
                patch_len(out, at);
            },
            [&](const MsgShutdown&) {
                patch_len(out, begin_frame(out, Tag::kShutdown));
            },
        },
        msg);
}

void encode(const Hello& hello, std::vector<std::uint8_t>& out) {
    const std::size_t at = begin_frame(out, Tag::kHello);
    Writer w(out);
    w.u32(kHelloMagic);
    w.u8(static_cast<std::uint8_t>(hello.kind));
    w.str(hello.label);
    patch_len(out, at);
}

void encode(const Welcome& welcome, std::vector<std::uint8_t>& out) {
    const std::size_t at = begin_frame(out, Tag::kWelcome);
    Writer w(out);
    w.u32(welcome.pe);
    w.u32(welcome.top_k);
    w.f64(welcome.notify_period_s);
    w.f64(welcome.heartbeat_period_s);
    w.u8(welcome.liveness ? 1 : 0);
    patch_len(out, at);
}

// ---- Decoding -----------------------------------------------------------

std::optional<MasterMsg> decode_master(const std::uint8_t* body,
                                       std::size_t size,
                                       std::string* error) {
    Reader r(body, size);
    std::uint8_t tag = 0;
    if (!open_body(r, tag)) {
        set_error(error, r, "malformed frame");
        return std::nullopt;
    }
    std::optional<MasterMsg> out;
    switch (static_cast<Tag>(tag)) {
        case Tag::kRegister: {
            MsgRegister m;
            if (r.u32(m.pe) && get_pe_kind(r, m.kind)) out = m;
            break;
        }
        case Tag::kWorkRequest: {
            MsgWorkRequest m;
            if (r.u32(m.pe)) out = m;
            break;
        }
        case Tag::kProgress: {
            MsgProgress m;
            if (r.u32(m.pe) && r.f64(m.cells_per_second)) out = m;
            break;
        }
        case Tag::kTaskDone: {
            MsgTaskDone m;
            if (r.u32(m.pe) && r.u32(m.task) &&
                get_task_result(r, m.result)) {
                out = std::move(m);
            }
            break;
        }
        case Tag::kDeregister: {
            MsgDeregister m;
            if (r.u32(m.pe)) out = m;
            break;
        }
        case Tag::kHeartbeat: {
            MsgHeartbeat m;
            if (r.u32(m.pe)) out = m;
            break;
        }
        case Tag::kTaskFailed: {
            MsgTaskFailed m;
            if (r.u32(m.pe) && r.u32(m.task) && r.str(m.what)) {
                out = std::move(m);
            }
            break;
        }
        case Tag::kHello:
        case Tag::kWelcome:
        case Tag::kAssign:
        case Tag::kNoWorkYet:
        case Tag::kCancel:
        case Tag::kShutdown:
        default:
            r.fail("unexpected tag for a slave->master frame");
            break;
    }
    if (!out.has_value() || !r.finish()) {
        set_error(error, r, "malformed frame");
        return std::nullopt;
    }
    return out;
}

std::optional<SlaveMsg> decode_slave(const std::uint8_t* body,
                                     std::size_t size, std::string* error) {
    Reader r(body, size);
    std::uint8_t tag = 0;
    if (!open_body(r, tag)) {
        set_error(error, r, "malformed frame");
        return std::nullopt;
    }
    std::optional<SlaveMsg> out;
    switch (static_cast<Tag>(tag)) {
        case Tag::kAssign: {
            MsgAssign m;
            std::uint32_t n = 0;
            if (!r.count(n, kTaskBytes)) break;
            m.tasks.resize(n);
            bool ok = true;
            for (core::Task& t : m.tasks) {
                if (!r.u32(t.id) || !r.u32(t.query_index) ||
                    !r.u64(t.cells)) {
                    ok = false;
                    break;
                }
            }
            if (ok) out = std::move(m);
            break;
        }
        case Tag::kNoWorkYet:
            out = MsgNoWorkYet{};
            break;
        case Tag::kCancel: {
            MsgCancel m;
            if (r.u32(m.task)) out = m;
            break;
        }
        case Tag::kShutdown:
            out = MsgShutdown{};
            break;
        case Tag::kRegister:
        case Tag::kWorkRequest:
        case Tag::kProgress:
        case Tag::kTaskDone:
        case Tag::kDeregister:
        case Tag::kHeartbeat:
        case Tag::kTaskFailed:
        case Tag::kHello:
        case Tag::kWelcome:
        default:
            r.fail("unexpected tag for a master->slave frame");
            break;
    }
    if (!out.has_value() || !r.finish()) {
        set_error(error, r, "malformed frame");
        return std::nullopt;
    }
    return out;
}

std::optional<Hello> decode_hello(const std::uint8_t* body, std::size_t size,
                                  std::string* error) {
    Reader r(body, size);
    std::uint8_t tag = 0;
    if (!open_body(r, tag)) {
        set_error(error, r, "malformed frame");
        return std::nullopt;
    }
    Hello hello;
    std::uint32_t magic = 0;
    const bool ok = static_cast<Tag>(tag) == Tag::kHello
                        ? (r.u32(magic) && get_pe_kind(r, hello.kind) &&
                           r.str(hello.label))
                        : r.fail("expected a Hello frame");
    if (!ok || magic != kHelloMagic || !r.finish()) {
        if (ok && magic != kHelloMagic) r.fail("bad Hello magic");
        set_error(error, r, "malformed Hello");
        return std::nullopt;
    }
    return hello;
}

std::optional<Welcome> decode_welcome(const std::uint8_t* body,
                                      std::size_t size, std::string* error) {
    Reader r(body, size);
    std::uint8_t tag = 0;
    if (!open_body(r, tag)) {
        set_error(error, r, "malformed frame");
        return std::nullopt;
    }
    Welcome w;
    std::uint8_t liveness = 0;
    const bool ok =
        static_cast<Tag>(tag) == Tag::kWelcome
            ? (r.u32(w.pe) && r.u32(w.top_k) && r.f64(w.notify_period_s) &&
               r.f64(w.heartbeat_period_s) && r.u8(liveness))
            : r.fail("expected a Welcome frame");
    if (!ok || liveness > 1 || !r.finish()) {
        if (ok && liveness > 1) r.fail("liveness byte out of range");
        set_error(error, r, "malformed Welcome");
        return std::nullopt;
    }
    w.liveness = liveness == 1;
    return w;
}

}  // namespace swh::net::wire

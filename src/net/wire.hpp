#pragma once

// Wire codec for the Msg* protocol (ISSUE 10): a versioned,
// length-prefixed binary framing so master and slaves can run as
// separate OS processes over sockets/pipes — the paper's Gigabit-
// Ethernet deployment — instead of an in-process queue.
//
// Frame layout (all integers little-endian, no padding):
//
//     u32  body_len          2 <= body_len <= kMaxFrameBytes
//     u8   version           kWireVersion; anything else is rejected
//     u8   tag               message alternative (Tag below)
//     ...  payload           fixed-width LE fields per alternative
//
// Variable-size fields inside a payload:
//   * strings:  u32 byte length + raw bytes. Decoding bounds every
//     string at kMaxStringBytes — longer payloads keep a prefix plus
//     kTruncationMarker, and the excess is skipped, so one hostile
//     frame cannot balloon master memory (ISSUE 10 satellite).
//   * vectors:  u32 element count + fixed-width elements. The count is
//     validated against the bytes actually remaining in the frame
//     BEFORE any allocation, so a forged count cannot force an
//     oversized reserve.
//
// Decoding is strict: truncated payloads, trailing bytes, unknown
// tags, bad versions, non-finite doubles, and out-of-range enum bytes
// all reject the frame (nullopt + reason). A peer that emits one
// malformed frame is treated like a dead link — the transport drops
// the connection and the liveness machinery takes it from there.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "net/messages.hpp"

namespace swh::net::wire {

/// Bumped on any incompatible change to the frame or payload layout.
constexpr std::uint8_t kWireVersion = 1;

/// Hard cap on one frame body. A length prefix above this is a protocol
/// error — the transport rejects it without reading (or buffering) the
/// body. 1 MiB comfortably fits the largest legitimate message (a
/// MsgTaskDone carrying ~131k hits or a MsgAssign of ~65k tasks).
constexpr std::uint32_t kMaxFrameBytes = 1u << 20;

/// Per-string decode bound; longer strings are truncated with
/// kTruncationMarker appended (total stays exactly kMaxStringBytes).
constexpr std::size_t kMaxStringBytes = 4096;

/// Appended to a decoded string that hit kMaxStringBytes.
inline constexpr const char* kTruncationMarker = "...[truncated]";

/// Hello magic ("SWH1" little-endian): the first payload field a slave
/// sends, so a stray connection from something that is not a swhybrid
/// slave is rejected before any state is allocated for it.
constexpr std::uint32_t kHelloMagic = 0x31485753u;

/// Message alternative tags. Master<-slave and master->slave live in
/// disjoint ranges so a mis-wired endpoint fails loudly at decode.
enum class Tag : std::uint8_t {
    // Slave -> master (MasterMsg alternatives).
    kRegister = 0x01,
    kWorkRequest = 0x02,
    kProgress = 0x03,
    kTaskDone = 0x04,
    kDeregister = 0x05,
    kHeartbeat = 0x06,
    kTaskFailed = 0x07,
    // Handshake (ISSUE 10 bootstrap; see runtime/remote.hpp).
    kHello = 0x20,
    kWelcome = 0x21,
    // Master -> slave (SlaveMsg alternatives).
    kAssign = 0x41,
    kNoWorkYet = 0x42,
    kCancel = 0x43,
    kShutdown = 0x44,
};

// ---- Handshake payloads -------------------------------------------------

/// Slave -> master connection preamble: proves the peer speaks this
/// protocol and carries the reporting metadata the in-process runtime
/// would have taken from SlaveSpec.
struct Hello {
    core::PeKind kind = core::PeKind::SseCore;
    std::string label;

    friend bool operator==(const Hello&, const Hello&) = default;
};

/// Master -> slave handshake reply: the assigned PeId plus the protocol
/// options both sides must agree on (pushed from the master so the two
/// processes cannot silently diverge).
struct Welcome {
    core::PeId pe = 0;
    std::uint32_t top_k = 10;
    double notify_period_s = 0.2;
    double heartbeat_period_s = 0.05;
    bool liveness = false;

    friend bool operator==(const Welcome&, const Welcome&) = default;
};

// ---- Encoding -----------------------------------------------------------

// Appends one complete frame (length prefix included) to `out`.
void encode(const MasterMsg& msg, std::vector<std::uint8_t>& out);
void encode(const SlaveMsg& msg, std::vector<std::uint8_t>& out);
void encode(const Hello& hello, std::vector<std::uint8_t>& out);
void encode(const Welcome& welcome, std::vector<std::uint8_t>& out);

// ---- Decoding -----------------------------------------------------------

// Decodes one frame BODY (the bytes after the u32 length prefix; the
// transport has already validated body_len <= kMaxFrameBytes). Returns
// nullopt on any malformed input; `error`, when non-null, receives a
// one-line reason.
std::optional<MasterMsg> decode_master(const std::uint8_t* body,
                                       std::size_t size,
                                       std::string* error = nullptr);
std::optional<SlaveMsg> decode_slave(const std::uint8_t* body,
                                     std::size_t size,
                                     std::string* error = nullptr);
std::optional<Hello> decode_hello(const std::uint8_t* body, std::size_t size,
                                  std::string* error = nullptr);
std::optional<Welcome> decode_welcome(const std::uint8_t* body,
                                      std::size_t size,
                                      std::string* error = nullptr);

}  // namespace swh::net::wire

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_nondedicated.dir/bench_fig8_nondedicated.cpp.o"
  "CMakeFiles/bench_fig8_nondedicated.dir/bench_fig8_nondedicated.cpp.o.d"
  "bench_fig8_nondedicated"
  "bench_fig8_nondedicated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_nondedicated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

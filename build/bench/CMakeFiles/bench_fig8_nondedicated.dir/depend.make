# Empty dependencies file for bench_fig8_nondedicated.
# This may be replaced when dependencies are built.

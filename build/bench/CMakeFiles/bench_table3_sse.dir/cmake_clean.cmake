file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_sse.dir/bench_table3_sse.cpp.o"
  "CMakeFiles/bench_table3_sse.dir/bench_table3_sse.cpp.o.d"
  "bench_table3_sse"
  "bench_table3_sse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_sse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_omega.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_omega.dir/bench_omega.cpp.o"
  "CMakeFiles/bench_omega.dir/bench_omega.cpp.o.d"
  "bench_omega"
  "bench_omega.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_omega.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_hybrid.dir/bench_table5_hybrid.cpp.o"
  "CMakeFiles/bench_table5_hybrid.dir/bench_table5_hybrid.cpp.o.d"
  "bench_table5_hybrid"
  "bench_table5_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig5_gantt.
# This may be replaced when dependencies are built.

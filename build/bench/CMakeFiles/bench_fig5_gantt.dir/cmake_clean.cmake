file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_gantt.dir/bench_fig5_gantt.cpp.o"
  "CMakeFiles/bench_fig5_gantt.dir/bench_fig5_gantt.cpp.o.d"
  "bench_fig5_gantt"
  "bench_fig5_gantt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_gantt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

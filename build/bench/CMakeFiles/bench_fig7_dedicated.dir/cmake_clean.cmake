file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_dedicated.dir/bench_fig7_dedicated.cpp.o"
  "CMakeFiles/bench_fig7_dedicated.dir/bench_fig7_dedicated.cpp.o.d"
  "bench_fig7_dedicated"
  "bench_fig7_dedicated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_dedicated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_adjustment.dir/bench_fig6_adjustment.cpp.o"
  "CMakeFiles/bench_fig6_adjustment.dir/bench_fig6_adjustment.cpp.o.d"
  "bench_fig6_adjustment"
  "bench_fig6_adjustment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_adjustment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

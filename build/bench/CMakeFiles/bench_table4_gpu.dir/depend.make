# Empty dependencies file for bench_table4_gpu.
# This may be replaced when dependencies are built.

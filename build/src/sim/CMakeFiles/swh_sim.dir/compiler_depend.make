# Empty compiler generated dependencies file for swh_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libswh_sim.a"
)

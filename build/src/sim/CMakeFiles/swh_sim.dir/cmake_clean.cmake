file(REMOVE_RECURSE
  "CMakeFiles/swh_sim.dir/platform.cpp.o"
  "CMakeFiles/swh_sim.dir/platform.cpp.o.d"
  "CMakeFiles/swh_sim.dir/simulator.cpp.o"
  "CMakeFiles/swh_sim.dir/simulator.cpp.o.d"
  "libswh_sim.a"
  "libswh_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swh_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

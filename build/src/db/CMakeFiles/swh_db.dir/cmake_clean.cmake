file(REMOVE_RECURSE
  "CMakeFiles/swh_db.dir/database.cpp.o"
  "CMakeFiles/swh_db.dir/database.cpp.o.d"
  "CMakeFiles/swh_db.dir/generator.cpp.o"
  "CMakeFiles/swh_db.dir/generator.cpp.o.d"
  "CMakeFiles/swh_db.dir/presets.cpp.o"
  "CMakeFiles/swh_db.dir/presets.cpp.o.d"
  "libswh_db.a"
  "libswh_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swh_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

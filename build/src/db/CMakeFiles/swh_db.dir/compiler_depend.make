# Empty compiler generated dependencies file for swh_db.
# This may be replaced when dependencies are built.

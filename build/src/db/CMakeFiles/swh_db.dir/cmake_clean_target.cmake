file(REMOVE_RECURSE
  "libswh_db.a"
)

# Empty compiler generated dependencies file for swh_util.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libswh_util.a"
)

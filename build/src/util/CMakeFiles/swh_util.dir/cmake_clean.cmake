file(REMOVE_RECURSE
  "CMakeFiles/swh_util.dir/args.cpp.o"
  "CMakeFiles/swh_util.dir/args.cpp.o.d"
  "CMakeFiles/swh_util.dir/error.cpp.o"
  "CMakeFiles/swh_util.dir/error.cpp.o.d"
  "CMakeFiles/swh_util.dir/rng.cpp.o"
  "CMakeFiles/swh_util.dir/rng.cpp.o.d"
  "CMakeFiles/swh_util.dir/stats.cpp.o"
  "CMakeFiles/swh_util.dir/stats.cpp.o.d"
  "CMakeFiles/swh_util.dir/str.cpp.o"
  "CMakeFiles/swh_util.dir/str.cpp.o.d"
  "CMakeFiles/swh_util.dir/table.cpp.o"
  "CMakeFiles/swh_util.dir/table.cpp.o.d"
  "libswh_util.a"
  "libswh_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swh_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

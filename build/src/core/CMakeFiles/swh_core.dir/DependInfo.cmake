
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/policy.cpp" "src/core/CMakeFiles/swh_core.dir/policy.cpp.o" "gcc" "src/core/CMakeFiles/swh_core.dir/policy.cpp.o.d"
  "/root/repo/src/core/progress.cpp" "src/core/CMakeFiles/swh_core.dir/progress.cpp.o" "gcc" "src/core/CMakeFiles/swh_core.dir/progress.cpp.o.d"
  "/root/repo/src/core/results.cpp" "src/core/CMakeFiles/swh_core.dir/results.cpp.o" "gcc" "src/core/CMakeFiles/swh_core.dir/results.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/core/CMakeFiles/swh_core.dir/scheduler.cpp.o" "gcc" "src/core/CMakeFiles/swh_core.dir/scheduler.cpp.o.d"
  "/root/repo/src/core/task_table.cpp" "src/core/CMakeFiles/swh_core.dir/task_table.cpp.o" "gcc" "src/core/CMakeFiles/swh_core.dir/task_table.cpp.o.d"
  "/root/repo/src/core/types.cpp" "src/core/CMakeFiles/swh_core.dir/types.cpp.o" "gcc" "src/core/CMakeFiles/swh_core.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/swh_util.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/swh_align.dir/DependInfo.cmake"
  "/root/repo/build/src/simd/CMakeFiles/swh_simd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libswh_core.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/swh_core.dir/policy.cpp.o"
  "CMakeFiles/swh_core.dir/policy.cpp.o.d"
  "CMakeFiles/swh_core.dir/progress.cpp.o"
  "CMakeFiles/swh_core.dir/progress.cpp.o.d"
  "CMakeFiles/swh_core.dir/results.cpp.o"
  "CMakeFiles/swh_core.dir/results.cpp.o.d"
  "CMakeFiles/swh_core.dir/scheduler.cpp.o"
  "CMakeFiles/swh_core.dir/scheduler.cpp.o.d"
  "CMakeFiles/swh_core.dir/task_table.cpp.o"
  "CMakeFiles/swh_core.dir/task_table.cpp.o.d"
  "CMakeFiles/swh_core.dir/types.cpp.o"
  "CMakeFiles/swh_core.dir/types.cpp.o.d"
  "libswh_core.a"
  "libswh_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swh_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for swh_core.
# This may be replaced when dependencies are built.

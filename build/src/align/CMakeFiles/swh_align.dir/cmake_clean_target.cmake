file(REMOVE_RECURSE
  "libswh_align.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/swh_align.dir/alignment.cpp.o"
  "CMakeFiles/swh_align.dir/alignment.cpp.o.d"
  "CMakeFiles/swh_align.dir/alphabet.cpp.o"
  "CMakeFiles/swh_align.dir/alphabet.cpp.o.d"
  "CMakeFiles/swh_align.dir/banded.cpp.o"
  "CMakeFiles/swh_align.dir/banded.cpp.o.d"
  "CMakeFiles/swh_align.dir/evalue.cpp.o"
  "CMakeFiles/swh_align.dir/evalue.cpp.o.d"
  "CMakeFiles/swh_align.dir/local_align.cpp.o"
  "CMakeFiles/swh_align.dir/local_align.cpp.o.d"
  "CMakeFiles/swh_align.dir/myers_miller.cpp.o"
  "CMakeFiles/swh_align.dir/myers_miller.cpp.o.d"
  "CMakeFiles/swh_align.dir/overlap.cpp.o"
  "CMakeFiles/swh_align.dir/overlap.cpp.o.d"
  "CMakeFiles/swh_align.dir/score_matrix.cpp.o"
  "CMakeFiles/swh_align.dir/score_matrix.cpp.o.d"
  "CMakeFiles/swh_align.dir/striped.cpp.o"
  "CMakeFiles/swh_align.dir/striped.cpp.o.d"
  "CMakeFiles/swh_align.dir/sw_scalar.cpp.o"
  "CMakeFiles/swh_align.dir/sw_scalar.cpp.o.d"
  "CMakeFiles/swh_align.dir/traceback.cpp.o"
  "CMakeFiles/swh_align.dir/traceback.cpp.o.d"
  "libswh_align.a"
  "libswh_align.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swh_align.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for swh_align.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/align/alignment.cpp" "src/align/CMakeFiles/swh_align.dir/alignment.cpp.o" "gcc" "src/align/CMakeFiles/swh_align.dir/alignment.cpp.o.d"
  "/root/repo/src/align/alphabet.cpp" "src/align/CMakeFiles/swh_align.dir/alphabet.cpp.o" "gcc" "src/align/CMakeFiles/swh_align.dir/alphabet.cpp.o.d"
  "/root/repo/src/align/banded.cpp" "src/align/CMakeFiles/swh_align.dir/banded.cpp.o" "gcc" "src/align/CMakeFiles/swh_align.dir/banded.cpp.o.d"
  "/root/repo/src/align/evalue.cpp" "src/align/CMakeFiles/swh_align.dir/evalue.cpp.o" "gcc" "src/align/CMakeFiles/swh_align.dir/evalue.cpp.o.d"
  "/root/repo/src/align/local_align.cpp" "src/align/CMakeFiles/swh_align.dir/local_align.cpp.o" "gcc" "src/align/CMakeFiles/swh_align.dir/local_align.cpp.o.d"
  "/root/repo/src/align/myers_miller.cpp" "src/align/CMakeFiles/swh_align.dir/myers_miller.cpp.o" "gcc" "src/align/CMakeFiles/swh_align.dir/myers_miller.cpp.o.d"
  "/root/repo/src/align/overlap.cpp" "src/align/CMakeFiles/swh_align.dir/overlap.cpp.o" "gcc" "src/align/CMakeFiles/swh_align.dir/overlap.cpp.o.d"
  "/root/repo/src/align/score_matrix.cpp" "src/align/CMakeFiles/swh_align.dir/score_matrix.cpp.o" "gcc" "src/align/CMakeFiles/swh_align.dir/score_matrix.cpp.o.d"
  "/root/repo/src/align/striped.cpp" "src/align/CMakeFiles/swh_align.dir/striped.cpp.o" "gcc" "src/align/CMakeFiles/swh_align.dir/striped.cpp.o.d"
  "/root/repo/src/align/sw_scalar.cpp" "src/align/CMakeFiles/swh_align.dir/sw_scalar.cpp.o" "gcc" "src/align/CMakeFiles/swh_align.dir/sw_scalar.cpp.o.d"
  "/root/repo/src/align/traceback.cpp" "src/align/CMakeFiles/swh_align.dir/traceback.cpp.o" "gcc" "src/align/CMakeFiles/swh_align.dir/traceback.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/swh_util.dir/DependInfo.cmake"
  "/root/repo/build/src/simd/CMakeFiles/swh_simd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/swh_simd.dir/arch.cpp.o"
  "CMakeFiles/swh_simd.dir/arch.cpp.o.d"
  "libswh_simd.a"
  "libswh_simd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swh_simd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

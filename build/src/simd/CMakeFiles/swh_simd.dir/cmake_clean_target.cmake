file(REMOVE_RECURSE
  "libswh_simd.a"
)

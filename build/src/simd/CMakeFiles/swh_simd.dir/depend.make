# Empty dependencies file for swh_simd.
# This may be replaced when dependencies are built.

src/simd/CMakeFiles/swh_simd.dir/arch.cpp.o: /root/repo/src/simd/arch.cpp \
 /usr/include/stdc-predef.h /root/repo/src/simd/arch.hpp


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engines/cpu_engine.cpp" "src/engines/CMakeFiles/swh_engines.dir/cpu_engine.cpp.o" "gcc" "src/engines/CMakeFiles/swh_engines.dir/cpu_engine.cpp.o.d"
  "/root/repo/src/engines/fpga_engine.cpp" "src/engines/CMakeFiles/swh_engines.dir/fpga_engine.cpp.o" "gcc" "src/engines/CMakeFiles/swh_engines.dir/fpga_engine.cpp.o.d"
  "/root/repo/src/engines/sim_gpu_engine.cpp" "src/engines/CMakeFiles/swh_engines.dir/sim_gpu_engine.cpp.o" "gcc" "src/engines/CMakeFiles/swh_engines.dir/sim_gpu_engine.cpp.o.d"
  "/root/repo/src/engines/throttled_engine.cpp" "src/engines/CMakeFiles/swh_engines.dir/throttled_engine.cpp.o" "gcc" "src/engines/CMakeFiles/swh_engines.dir/throttled_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/swh_util.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/swh_align.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/swh_core.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/swh_db.dir/DependInfo.cmake"
  "/root/repo/build/src/simd/CMakeFiles/swh_simd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libswh_engines.a"
)

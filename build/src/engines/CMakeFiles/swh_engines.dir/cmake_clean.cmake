file(REMOVE_RECURSE
  "CMakeFiles/swh_engines.dir/cpu_engine.cpp.o"
  "CMakeFiles/swh_engines.dir/cpu_engine.cpp.o.d"
  "CMakeFiles/swh_engines.dir/fpga_engine.cpp.o"
  "CMakeFiles/swh_engines.dir/fpga_engine.cpp.o.d"
  "CMakeFiles/swh_engines.dir/sim_gpu_engine.cpp.o"
  "CMakeFiles/swh_engines.dir/sim_gpu_engine.cpp.o.d"
  "CMakeFiles/swh_engines.dir/throttled_engine.cpp.o"
  "CMakeFiles/swh_engines.dir/throttled_engine.cpp.o.d"
  "libswh_engines.a"
  "libswh_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swh_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

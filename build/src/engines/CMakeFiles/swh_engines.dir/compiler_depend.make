# Empty compiler generated dependencies file for swh_engines.
# This may be replaced when dependencies are built.

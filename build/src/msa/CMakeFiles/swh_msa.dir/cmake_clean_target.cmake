file(REMOVE_RECURSE
  "libswh_msa.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/swh_msa.dir/distance.cpp.o"
  "CMakeFiles/swh_msa.dir/distance.cpp.o.d"
  "CMakeFiles/swh_msa.dir/guide_tree.cpp.o"
  "CMakeFiles/swh_msa.dir/guide_tree.cpp.o.d"
  "CMakeFiles/swh_msa.dir/msa.cpp.o"
  "CMakeFiles/swh_msa.dir/msa.cpp.o.d"
  "CMakeFiles/swh_msa.dir/progressive.cpp.o"
  "CMakeFiles/swh_msa.dir/progressive.cpp.o.d"
  "libswh_msa.a"
  "libswh_msa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swh_msa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

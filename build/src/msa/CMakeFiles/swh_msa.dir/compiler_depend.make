# Empty compiler generated dependencies file for swh_msa.
# This may be replaced when dependencies are built.

# Empty dependencies file for swh_runtime.
# This may be replaced when dependencies are built.

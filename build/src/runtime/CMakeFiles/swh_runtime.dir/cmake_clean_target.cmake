file(REMOVE_RECURSE
  "libswh_runtime.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/swh_runtime.dir/hybrid_runtime.cpp.o"
  "CMakeFiles/swh_runtime.dir/hybrid_runtime.cpp.o.d"
  "libswh_runtime.a"
  "libswh_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swh_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for swh_io.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/swh_io.dir/fasta.cpp.o"
  "CMakeFiles/swh_io.dir/fasta.cpp.o.d"
  "CMakeFiles/swh_io.dir/fastq.cpp.o"
  "CMakeFiles/swh_io.dir/fastq.cpp.o.d"
  "CMakeFiles/swh_io.dir/indexed.cpp.o"
  "CMakeFiles/swh_io.dir/indexed.cpp.o.d"
  "libswh_io.a"
  "libswh_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swh_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

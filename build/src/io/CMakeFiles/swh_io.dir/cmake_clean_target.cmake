file(REMOVE_RECURSE
  "libswh_io.a"
)

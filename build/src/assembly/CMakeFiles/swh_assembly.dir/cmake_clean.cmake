file(REMOVE_RECURSE
  "CMakeFiles/swh_assembly.dir/assembler.cpp.o"
  "CMakeFiles/swh_assembly.dir/assembler.cpp.o.d"
  "CMakeFiles/swh_assembly.dir/read_sim.cpp.o"
  "CMakeFiles/swh_assembly.dir/read_sim.cpp.o.d"
  "libswh_assembly.a"
  "libswh_assembly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swh_assembly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for swh_assembly.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libswh_assembly.a"
)

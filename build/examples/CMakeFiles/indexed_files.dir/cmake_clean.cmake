file(REMOVE_RECURSE
  "CMakeFiles/indexed_files.dir/indexed_files.cpp.o"
  "CMakeFiles/indexed_files.dir/indexed_files.cpp.o.d"
  "indexed_files"
  "indexed_files.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indexed_files.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

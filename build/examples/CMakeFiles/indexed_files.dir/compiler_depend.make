# Empty compiler generated dependencies file for indexed_files.
# This may be replaced when dependencies are built.

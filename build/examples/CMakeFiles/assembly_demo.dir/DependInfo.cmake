
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/assembly_demo.cpp" "examples/CMakeFiles/assembly_demo.dir/assembly_demo.cpp.o" "gcc" "examples/CMakeFiles/assembly_demo.dir/assembly_demo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/swh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/msa/CMakeFiles/swh_msa.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/swh_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/engines/CMakeFiles/swh_engines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/swh_core.dir/DependInfo.cmake"
  "/root/repo/build/src/assembly/CMakeFiles/swh_assembly.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/swh_io.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/swh_db.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/swh_align.dir/DependInfo.cmake"
  "/root/repo/build/src/simd/CMakeFiles/swh_simd.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/swh_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/assembly_demo.dir/assembly_demo.cpp.o"
  "CMakeFiles/assembly_demo.dir/assembly_demo.cpp.o.d"
  "assembly_demo"
  "assembly_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assembly_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for assembly_demo.
# This may be replaced when dependencies are built.

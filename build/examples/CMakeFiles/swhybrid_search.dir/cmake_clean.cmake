file(REMOVE_RECURSE
  "CMakeFiles/swhybrid_search.dir/swhybrid_search.cpp.o"
  "CMakeFiles/swhybrid_search.dir/swhybrid_search.cpp.o.d"
  "swhybrid_search"
  "swhybrid_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swhybrid_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

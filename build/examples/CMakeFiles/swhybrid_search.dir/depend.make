# Empty dependencies file for swhybrid_search.
# This may be replaced when dependencies are built.

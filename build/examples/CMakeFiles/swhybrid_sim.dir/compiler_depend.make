# Empty compiler generated dependencies file for swhybrid_sim.
# This may be replaced when dependencies are built.

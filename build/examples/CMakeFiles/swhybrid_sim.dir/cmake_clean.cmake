file(REMOVE_RECURSE
  "CMakeFiles/swhybrid_sim.dir/swhybrid_sim.cpp.o"
  "CMakeFiles/swhybrid_sim.dir/swhybrid_sim.cpp.o.d"
  "swhybrid_sim"
  "swhybrid_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swhybrid_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/align_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/db_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/engines_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/msa_test[1]_include.cmake")
include("/root/repo/build/tests/assembly_test[1]_include.cmake")
include("/root/repo/build/tests/umbrella_test[1]_include.cmake")

file(REMOVE_RECURSE
  "CMakeFiles/msa_test.dir/msa/msa_test.cpp.o"
  "CMakeFiles/msa_test.dir/msa/msa_test.cpp.o.d"
  "CMakeFiles/msa_test.dir/msa/progressive_test.cpp.o"
  "CMakeFiles/msa_test.dir/msa/progressive_test.cpp.o.d"
  "msa_test"
  "msa_test.pdb"
  "msa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for msa_test.
# This may be replaced when dependencies are built.

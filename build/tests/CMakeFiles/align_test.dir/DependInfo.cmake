
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/align/aligner_family_test.cpp" "tests/CMakeFiles/align_test.dir/align/aligner_family_test.cpp.o" "gcc" "tests/CMakeFiles/align_test.dir/align/aligner_family_test.cpp.o.d"
  "/root/repo/tests/align/alignment_test.cpp" "tests/CMakeFiles/align_test.dir/align/alignment_test.cpp.o" "gcc" "tests/CMakeFiles/align_test.dir/align/alignment_test.cpp.o.d"
  "/root/repo/tests/align/alphabet_test.cpp" "tests/CMakeFiles/align_test.dir/align/alphabet_test.cpp.o" "gcc" "tests/CMakeFiles/align_test.dir/align/alphabet_test.cpp.o.d"
  "/root/repo/tests/align/banded_test.cpp" "tests/CMakeFiles/align_test.dir/align/banded_test.cpp.o" "gcc" "tests/CMakeFiles/align_test.dir/align/banded_test.cpp.o.d"
  "/root/repo/tests/align/evalue_test.cpp" "tests/CMakeFiles/align_test.dir/align/evalue_test.cpp.o" "gcc" "tests/CMakeFiles/align_test.dir/align/evalue_test.cpp.o.d"
  "/root/repo/tests/align/local_align_test.cpp" "tests/CMakeFiles/align_test.dir/align/local_align_test.cpp.o" "gcc" "tests/CMakeFiles/align_test.dir/align/local_align_test.cpp.o.d"
  "/root/repo/tests/align/myers_miller_test.cpp" "tests/CMakeFiles/align_test.dir/align/myers_miller_test.cpp.o" "gcc" "tests/CMakeFiles/align_test.dir/align/myers_miller_test.cpp.o.d"
  "/root/repo/tests/align/overlap_test.cpp" "tests/CMakeFiles/align_test.dir/align/overlap_test.cpp.o" "gcc" "tests/CMakeFiles/align_test.dir/align/overlap_test.cpp.o.d"
  "/root/repo/tests/align/score_matrix_test.cpp" "tests/CMakeFiles/align_test.dir/align/score_matrix_test.cpp.o" "gcc" "tests/CMakeFiles/align_test.dir/align/score_matrix_test.cpp.o.d"
  "/root/repo/tests/align/simd_test.cpp" "tests/CMakeFiles/align_test.dir/align/simd_test.cpp.o" "gcc" "tests/CMakeFiles/align_test.dir/align/simd_test.cpp.o.d"
  "/root/repo/tests/align/striped_sweep_test.cpp" "tests/CMakeFiles/align_test.dir/align/striped_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/align_test.dir/align/striped_sweep_test.cpp.o.d"
  "/root/repo/tests/align/striped_test.cpp" "tests/CMakeFiles/align_test.dir/align/striped_test.cpp.o" "gcc" "tests/CMakeFiles/align_test.dir/align/striped_test.cpp.o.d"
  "/root/repo/tests/align/sw_scalar_test.cpp" "tests/CMakeFiles/align_test.dir/align/sw_scalar_test.cpp.o" "gcc" "tests/CMakeFiles/align_test.dir/align/sw_scalar_test.cpp.o.d"
  "/root/repo/tests/align/traceback_test.cpp" "tests/CMakeFiles/align_test.dir/align/traceback_test.cpp.o" "gcc" "tests/CMakeFiles/align_test.dir/align/traceback_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/swh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/msa/CMakeFiles/swh_msa.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/swh_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/engines/CMakeFiles/swh_engines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/swh_core.dir/DependInfo.cmake"
  "/root/repo/build/src/assembly/CMakeFiles/swh_assembly.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/swh_io.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/swh_db.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/swh_align.dir/DependInfo.cmake"
  "/root/repo/build/src/simd/CMakeFiles/swh_simd.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/swh_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/align_test.dir/align/aligner_family_test.cpp.o"
  "CMakeFiles/align_test.dir/align/aligner_family_test.cpp.o.d"
  "CMakeFiles/align_test.dir/align/alignment_test.cpp.o"
  "CMakeFiles/align_test.dir/align/alignment_test.cpp.o.d"
  "CMakeFiles/align_test.dir/align/alphabet_test.cpp.o"
  "CMakeFiles/align_test.dir/align/alphabet_test.cpp.o.d"
  "CMakeFiles/align_test.dir/align/banded_test.cpp.o"
  "CMakeFiles/align_test.dir/align/banded_test.cpp.o.d"
  "CMakeFiles/align_test.dir/align/evalue_test.cpp.o"
  "CMakeFiles/align_test.dir/align/evalue_test.cpp.o.d"
  "CMakeFiles/align_test.dir/align/local_align_test.cpp.o"
  "CMakeFiles/align_test.dir/align/local_align_test.cpp.o.d"
  "CMakeFiles/align_test.dir/align/myers_miller_test.cpp.o"
  "CMakeFiles/align_test.dir/align/myers_miller_test.cpp.o.d"
  "CMakeFiles/align_test.dir/align/overlap_test.cpp.o"
  "CMakeFiles/align_test.dir/align/overlap_test.cpp.o.d"
  "CMakeFiles/align_test.dir/align/score_matrix_test.cpp.o"
  "CMakeFiles/align_test.dir/align/score_matrix_test.cpp.o.d"
  "CMakeFiles/align_test.dir/align/simd_test.cpp.o"
  "CMakeFiles/align_test.dir/align/simd_test.cpp.o.d"
  "CMakeFiles/align_test.dir/align/striped_sweep_test.cpp.o"
  "CMakeFiles/align_test.dir/align/striped_sweep_test.cpp.o.d"
  "CMakeFiles/align_test.dir/align/striped_test.cpp.o"
  "CMakeFiles/align_test.dir/align/striped_test.cpp.o.d"
  "CMakeFiles/align_test.dir/align/sw_scalar_test.cpp.o"
  "CMakeFiles/align_test.dir/align/sw_scalar_test.cpp.o.d"
  "CMakeFiles/align_test.dir/align/traceback_test.cpp.o"
  "CMakeFiles/align_test.dir/align/traceback_test.cpp.o.d"
  "align_test"
  "align_test.pdb"
  "align_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/align_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
